//! The inter-cloud message-passing transport: typed S1 ↔ S2 protocol messages, the
//! [`Transport`] trait that carries them, and its two implementations.
//!
//! # Architecture
//!
//! The paper's §3.2 deployment is two non-colluding parties exchanging messages over a
//! metered link.  Every sub-protocol exchange in this crate is expressed as one
//! [`S1Request`] shipped to S2 and one [`S2Response`] shipped back — there is no shared
//! state between the parties; S2's keys, randomness and ledger live exclusively inside
//! the [`crate::engine::S2Engine`] behind the transport:
//!
//! ```text
//!            primary cloud S1                      crypto cloud S2
//!   ┌────────────────────────────┐         ┌───────────────────────────────┐
//!   │ S1State                    │         │ S2Engine                      │
//!   │  public keys, rng, ledger  │         │  secret keys, rng, ledger     │
//!   │  encrypted relation        │         │  (no data)                    │
//!   └─────────────┬──────────────┘         └───────────────▲───────────────┘
//!                 │      S1Request (serialized, metered)   │
//!                 │  ────────────────────────────────────▶ │
//!                 │            Transport::round_trip       │
//!                 │  ◀──────────────────────────────────── │
//!                 │      S2Response (serialized, metered)  │
//!                 ▼                                        │
//!          ChannelMetrics: bytes measured from the wire encoding,
//!          1 round per request/response pair (Batch counts as one)
//! ```
//!
//! Four implementations:
//!
//! * [`InProcessTransport`] — the fast path: the request value is handed to the engine
//!   without copying the payload; messages are still *metered* at their exact wire size
//!   via [`crate::wire::encoded_len`].
//! * [`ChannelTransport`] — S2 runs on its own thread; every message is actually
//!   serialized with [`crate::wire`], shipped over an `mpsc` byte channel, and
//!   deserialized on the far side.  Nothing but bytes crosses the boundary.
//! * [`crate::multiplex::MultiplexTransport`] — S2 as a session-multiplexing worker
//!   pool; frames travel inside session-tagged envelopes.
//! * [`crate::tcp::TcpTransport`] — S2 as a real networked process: the same envelopes,
//!   length-prefix-framed over a TCP socket to a [`crate::tcp::TcpCloudServer`].
//!
//! All four produce byte-identical protocol outputs, identical leakage ledgers and
//! identical [`ChannelMetrics`] for the same seed (asserted by
//! `tests/transport_equivalence.rs`).
//!
//! Intra-query parallelism never leaks into this layer: S2 executes a request as
//! parallel compute + serial commit (see [`crate::engine`]) and S1 parallelizes only
//! pure ciphertext arithmetic after drawing its randomness serially, so transcripts,
//! metrics and ledgers are byte-identical for any `SECTOPK_INTRA_PARALLEL` worker
//! count.  Worker count is a local resource decision of each party — it is not
//! protocol state and is never carried in these messages.
//!
//! # Batching rules
//!
//! [`S1Request::Batch`] wraps any number of *independent* requests into a single round
//! trip; the engine answers with a positionally matching [`S2Response::Batch`].  Callers
//! use it to ship one message per scan depth instead of one per pair:
//!
//! * `SecDedup` ships its whole pairwise equality matrix inside one [`S1Request::Dedup`];
//!   with batching disabled it degrades to one [`S1Request::EqTest`] per pair.
//! * `EncSort` ships all comparator gates of one Batcher stage in one
//!   [`S1Request::Compare`]; unbatched, one request per gate.
//! * `SecWorst` / `SecBest` ship the equality matrices of all `m` per-depth items in one
//!   `Batch` and recover all selected scores in one [`S1Request::Recover`].
//!
//! Requests inside a `Batch` must not depend on each other's responses; sequencing
//! across rounds is the caller's job.
//!
//! # Measured vs. estimated bandwidth
//!
//! Earlier revisions *estimated* traffic as the sum of ciphertext `byte_len()`s.  The
//! transport now records the exact size of each encoded message, which adds the real
//! framing overhead (message tags, field names, length prefixes) to the Table 3 /
//! Fig. 13 numbers — a few percent on ciphertext-heavy messages.  Leakage events are
//! likewise recorded at this boundary: S2's ledger is filled exclusively by the engine
//! while handling requests, so the "S2 sees nothing but EP^d" tests check exactly what
//! crossed the wire.

use std::fmt;
use std::sync::mpsc;
use std::thread::JoinHandle;

use serde::{Deserialize, Serialize};

use sectopk_crypto::damgard_jurik::LayeredCiphertext;
use sectopk_crypto::paillier::Ciphertext;

use crate::channel::{ChannelMetrics, Direction};
use crate::dedup::EncryptedBlinding;
use crate::engine::S2Engine;
use crate::error::{ProtocolError, Result};
use crate::items::ScoredItem;
use crate::ledger::LeakageLedger;
use crate::multiplex::LinkProfile;
use crate::wire;
use crate::wire::WireError;

// ====================================================================================
// Message types
// ====================================================================================

/// Which aggregate bits S1 asks S2 to derive from an equality matrix.  S2 may compute
/// these because it legitimately decrypted every matrix entry (the `EP^d` leakage); the
/// encrypted aggregates travel back as `E2(·)` bits S1 cannot read.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EqWants {
    /// Per row `i`: `E2(∨_j t_ij)` — "did row *i* match any column?".
    pub row_matched: bool,
    /// Per row `i`: `E2(¬∨_j t_ij)` — "did row *i* match no column?".
    pub row_unmatched: bool,
    /// Per column `j`: `E2(¬∨_i t_ij)` — "did no row match column *j*?".
    pub col_unmatched: bool,
    /// Per row `i`: the *plaintext* bit `∨_j t_ij`.  This is a deliberate disclosure to
    /// S1 used only by the `Qry_E` / `SecDupElim` optimisations, whose profile grants S1
    /// the per-depth uniqueness pattern `UP^d` (§10.1).
    pub row_matched_plain: bool,
}

impl EqWants {
    /// No aggregates requested.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no aggregate is requested.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }
}

/// The aggregates S2 derived from an equality matrix; vectors are empty unless the
/// corresponding [`EqWants`] flag was set.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EqAggregates {
    /// `E2(∨_j t_ij)` per row.
    pub row_matched: Vec<LayeredCiphertext>,
    /// `E2(¬∨_j t_ij)` per row.
    pub row_unmatched: Vec<LayeredCiphertext>,
    /// `E2(¬∨_i t_ij)` per column.
    pub col_unmatched: Vec<LayeredCiphertext>,
    /// Plaintext `∨_j t_ij` per row (uniqueness-pattern disclosure, see [`EqWants`]).
    pub row_matched_plain: Vec<bool>,
}

/// The `SecDedup` / `SecDupElim` exchange payload (Algorithm 7 / §10.1): the blinded,
/// permuted items, their blinding randomness encrypted under S1's own key `pk'`, and the
/// pairwise equality matrix over the permuted positions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DedupRequest {
    /// Blinded items in permuted order.
    pub items: Vec<ScoredItem>,
    /// `Enc_pk'(blinding)` per item, permuted consistently with `items`.
    pub blindings: Vec<EncryptedBlinding>,
    /// Permuted index pairs `(a, b)` with `a < b`, one per matrix entry.
    pub pair_indices: Vec<(usize, usize)>,
    /// The `⊖` equality ciphertexts, positionally matching `pair_indices`.  `None` means
    /// the matrix was streamed ahead via unbatched [`S1Request::EqTest`] rounds and the
    /// engine must use its accumulated bits instead.
    pub matrix: Option<Vec<Ciphertext>>,
    /// `true` ⇒ `SecDupElim` (§10.1): drop duplicates, shrinking the list.
    pub eliminate: bool,
    /// Scan depth, for the equality-pattern bookkeeping.
    pub depth: usize,
}

/// One blinded tuple of the `SecFilter` exchange (Algorithm 12).  On the way out the
/// unblinders are S1's (`Enc_pk'(r⁻¹)`, `Enc_pk'(R_l)`); on the way back they are the
/// homomorphically updated versions after S2's re-blinding.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FilterTuple {
    /// Multiplicatively blinded score `Enc(r · b · score)`.
    pub score: Ciphertext,
    /// Additively blinded carried attributes.
    pub attributes: Vec<Ciphertext>,
    /// `Enc_pk'(·)` multiplicative unblinder for the score.
    pub score_unblinder: Ciphertext,
    /// `Enc_pk'(·)` additive masks for the attributes.
    pub attribute_masks: Vec<Ciphertext>,
}

impl FilterTuple {
    fn ciphertext_count(&self) -> usize {
        2 + self.attributes.len() + self.attribute_masks.len()
    }
}

/// A typed request from the primary cloud S1 to the crypto cloud S2.  One request and
/// its [`S2Response`] form one protocol round trip.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum S1Request {
    /// One `⊖` equality ciphertext — the *unbatched* form of the equality exchange.
    /// S2 decrypts it and, depending on the flags, replies `E2(t)` and/or remembers the
    /// bit for a later aggregate / dedup request of the same protocol session.
    EqTest {
        /// The randomized `a ⊖ b` ciphertext.
        diff: Ciphertext,
        /// Calling sub-protocol (ledger context).
        context: String,
        /// Scan depth, if applicable.
        depth: Option<usize>,
        /// Append the decrypted bit to S2's session state (consumed by the next
        /// [`S1Request::EqAggregate`] or matrix-less [`S1Request::Dedup`]).
        accumulate: bool,
        /// Reply with `E2(t)`.  `false` replies a bare [`S2Response::Ack`] — used by the
        /// dedup streaming path, where S2 itself consumes the bits and an encrypted
        /// reply would be wasted bandwidth.
        reply_bit: bool,
    },
    /// A whole equality matrix in one message: `rows × cols` ciphertexts in row-major
    /// order, plus optionally derived aggregate bits.
    EqMatrix {
        /// Row-major `⊖` ciphertexts (`diffs.len()` must be a multiple of `cols`).
        diffs: Vec<Ciphertext>,
        /// Number of columns.
        cols: usize,
        /// Calling sub-protocol (ledger context).
        context: String,
        /// Scan depth, if applicable.
        depth: Option<usize>,
        /// Aggregates to derive and return.
        want: EqWants,
    },
    /// Ask S2 to derive aggregates over the last `rows × cols` bits it accumulated from
    /// unbatched [`S1Request::EqTest`] rounds (consumes them).
    EqAggregate {
        /// Number of rows of the streamed matrix.
        rows: usize,
        /// Number of columns of the streamed matrix.
        cols: usize,
        /// Aggregates to derive and return.
        want: EqWants,
    },
    /// Blinded, sign-flipped differences; S2 decrypts each and reports only its sign
    /// (the EncCompare / EncSort comparator exchange).
    Compare {
        /// `Enc(±α(a−b))` per comparison.
        blinded: Vec<Ciphertext>,
        /// Calling sub-protocol (ledger context).
        context: String,
    },
    /// `RecoverEnc` (Algorithm 5): strip the outer Damgård–Jurik layer from each blinded
    /// `E2(Enc(c + r))`, returning the inner Paillier ciphertexts.
    Recover {
        /// The blinded layered ciphertexts.
        blinded: Vec<LayeredCiphertext>,
    },
    /// The `SecDedup` / `SecDupElim` exchange (Algorithm 7 / §10.1).
    Dedup(DedupRequest),
    /// The `SecFilter` exchange (Algorithm 12): drop blinded all-zero join tuples.
    Filter {
        /// Blinded joined tuples, in S1-permuted order.
        tuples: Vec<FilterTuple>,
    },
    /// Blinded operand pairs for the SkNN baseline's secure multiplication: S2 decrypts
    /// both halves, multiplies, and returns `Enc((a+r_a)(b+r_b))`.
    MulBlinded {
        /// The blinded `(Enc(a+r_a), Enc(b+r_b))` pairs.
        pairs: Vec<(Ciphertext, Ciphertext)>,
    },
    /// Any number of independent requests shipped as a single round trip.
    Batch(Vec<S1Request>),
}

impl S1Request {
    /// Number of ciphertexts (Paillier + layered) carried by this message, for the
    /// channel's ciphertext accounting.
    pub fn ciphertext_count(&self) -> usize {
        match self {
            S1Request::EqTest { .. } => 1,
            S1Request::EqMatrix { diffs, .. } => diffs.len(),
            S1Request::EqAggregate { .. } => 0,
            S1Request::Compare { blinded, .. } => blinded.len(),
            S1Request::Recover { blinded } => blinded.len(),
            S1Request::Dedup(req) => {
                req.matrix.as_ref().map_or(0, Vec::len)
                    + req.items.iter().map(|i| i.ehl.len() + 2).sum::<usize>()
                    + req.blindings.iter().map(|b| b.alphas.len() + 2).sum::<usize>()
            }
            S1Request::Filter { tuples } => tuples.iter().map(FilterTuple::ciphertext_count).sum(),
            S1Request::MulBlinded { pairs } => pairs.len() * 2,
            S1Request::Batch(requests) => requests.iter().map(Self::ciphertext_count).sum(),
        }
    }

    /// Stable lower-snake-case name of this request kind, used as the metric and trace
    /// span label for the protocol round that ships it.
    pub fn kind_name(&self) -> &'static str {
        match self {
            S1Request::EqTest { .. } => "eq_test",
            S1Request::EqMatrix { .. } => "eq_matrix",
            S1Request::EqAggregate { .. } => "eq_aggregate",
            S1Request::Compare { .. } => "compare",
            S1Request::Recover { .. } => "recover",
            S1Request::Dedup(_) => "dedup",
            S1Request::Filter { .. } => "filter",
            S1Request::MulBlinded { .. } => "mul_blinded",
            S1Request::Batch(_) => "batch",
        }
    }
}

/// A typed response from the crypto cloud S2, positionally matching the [`S1Request`]
/// kind that solicited it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum S2Response {
    /// Reply to [`S1Request::EqTest`]: the outer-layer encrypted bit `E2(t)`.
    EqBit(LayeredCiphertext),
    /// Bare acknowledgement — reply to an [`S1Request::EqTest`] with `reply_bit: false`.
    Ack,
    /// Reply to [`S1Request::EqMatrix`].
    EqBits {
        /// `E2(t_ij)` in row-major order.
        bits: Vec<LayeredCiphertext>,
        /// The requested aggregates (empty vectors for flags not set).
        aggregates: EqAggregates,
    },
    /// Reply to [`S1Request::EqAggregate`].
    EqAggregates(EqAggregates),
    /// Reply to [`S1Request::Compare`]: one sign per blinded difference
    /// (−1 / 0 / +1).
    Signs(Vec<i8>),
    /// Reply to [`S1Request::Recover`]: the (still blinded) inner Paillier ciphertexts.
    Recovered(Vec<Ciphertext>),
    /// Reply to [`S1Request::Dedup`]: re-blinded, re-permuted items and their updated
    /// encrypted blindings.
    Dedup {
        /// The processed items (same length for `SecDedup`, possibly shorter for
        /// `SecDupElim`).
        items: Vec<ScoredItem>,
        /// Updated `Enc_pk'(blinding)` per returned item.
        blindings: Vec<EncryptedBlinding>,
    },
    /// Reply to [`S1Request::Filter`]: the surviving (re-blinded, re-permuted) tuples.
    Filter {
        /// Tuples whose score was non-zero.
        survivors: Vec<FilterTuple>,
    },
    /// Reply to [`S1Request::MulBlinded`]: `Enc((a+r_a)(b+r_b))` per pair.
    Products(Vec<Ciphertext>),
    /// Replies to a [`S1Request::Batch`], in request order.
    Batch(Vec<S2Response>),
    /// S2 failed to process the request: a typed [`WireError`] frame.  The transport
    /// surfaces it as [`ProtocolError::Remote`]; the S2 worker keeps serving.
    Error(WireError),
}

impl S2Response {
    /// Number of ciphertexts (Paillier + layered) carried by this message.
    pub fn ciphertext_count(&self) -> usize {
        match self {
            S2Response::EqBit(_) => 1,
            S2Response::Ack => 0,
            S2Response::EqBits { bits, aggregates } => bits.len() + aggregates.ciphertext_count(),
            S2Response::EqAggregates(aggregates) => aggregates.ciphertext_count(),
            S2Response::Signs(_) => 0,
            S2Response::Recovered(inner) => inner.len(),
            S2Response::Dedup { items, blindings } => {
                items.iter().map(|i| i.ehl.len() + 2).sum::<usize>()
                    + blindings.iter().map(|b| b.alphas.len() + 2).sum::<usize>()
            }
            S2Response::Filter { survivors } => {
                survivors.iter().map(FilterTuple::ciphertext_count).sum()
            }
            S2Response::Products(products) => products.len(),
            S2Response::Batch(responses) => responses.iter().map(Self::ciphertext_count).sum(),
            S2Response::Error(_) => 0,
        }
    }
}

impl EqAggregates {
    fn ciphertext_count(&self) -> usize {
        self.row_matched.len() + self.row_unmatched.len() + self.col_unmatched.len()
    }
}

// ====================================================================================
// The transport trait
// ====================================================================================

/// Which transport implementation backs a [`crate::context::TwoClouds`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// S2 runs in-process behind a direct call (fast path, metered wire sizes).
    InProcess,
    /// S2 runs on its own thread; messages are serialized over an `mpsc` byte channel.
    Channel,
    /// S2 is a session-multiplexing worker pool ([`crate::multiplex::MultiplexServer`]);
    /// messages travel in [`crate::multiplex::Envelope`]-framed bytes tagged with a
    /// session id.  When selected here (rather than by connecting to an explicit
    /// server), each `TwoClouds` spins up a private single-worker server, so the whole
    /// test suite can run over the multiplexed path via `SECTOPK_TRANSPORT=multiplex`.
    Multiplex,
    /// S2 is a real networked process: envelopes travel length-prefix-framed over a TCP
    /// socket to a [`crate::tcp::TcpCloudServer`] listener (the `sectopk-s2d` binary).
    /// When selected here, each `TwoClouds` spins up a private loopback listener on an
    /// ephemeral port, so the whole test suite can run over real sockets via
    /// `SECTOPK_TRANSPORT=tcp`.
    Tcp,
}

/// Environment variable selecting the default transport (`"channel"`/`"thread"`,
/// `"multiplex"`/`"mux"`, `"tcp"`/`"socket"`, or anything else — including unset — for
/// in-process).
pub const TRANSPORT_ENV: &str = "SECTOPK_TRANSPORT";

impl TransportKind {
    /// The transport selected by the `SECTOPK_TRANSPORT` environment variable
    /// (`"channel"` / `"thread"` ⇒ [`TransportKind::Channel`], `"multiplex"` / `"mux"`
    /// ⇒ [`TransportKind::Multiplex`]; anything else, including unset, ⇒
    /// [`TransportKind::InProcess`]).  Lets the CI matrix run the whole test suite over
    /// the threaded and multiplexed paths without code changes.
    pub fn from_env() -> Self {
        Self::parse(std::env::var(TRANSPORT_ENV).ok().as_deref())
    }

    /// The selection rule behind [`Self::from_env`], split out so tests can exercise it
    /// without mutating the process environment (which every `TwoClouds::new` reads).
    pub fn parse(value: Option<&str>) -> Self {
        match value {
            Some(v) if v.eq_ignore_ascii_case("channel") || v.eq_ignore_ascii_case("thread") => {
                TransportKind::Channel
            }
            Some(v) if v.eq_ignore_ascii_case("multiplex") || v.eq_ignore_ascii_case("mux") => {
                TransportKind::Multiplex
            }
            Some(v) if v.eq_ignore_ascii_case("tcp") || v.eq_ignore_ascii_case("socket") => {
                TransportKind::Tcp
            }
            _ => TransportKind::InProcess,
        }
    }
}

/// A bidirectional, metered message channel to the crypto cloud S2.
///
/// Implementations own the S2 party outright — its keys, randomness and leakage ledger —
/// so protocol code on the S1 side can only interact with S2 by sending a typed
/// [`S1Request`] and reading the [`S2Response`].
pub trait Transport: fmt::Debug + Send {
    /// Ship `request` to S2 and block until its response arrives.  Exactly one round
    /// trip is recorded in the metrics, with byte sizes measured from the wire encoding.
    fn round_trip(&mut self, request: S1Request) -> Result<S2Response>;

    /// Communication statistics accumulated so far.
    fn metrics(&self) -> ChannelMetrics;

    /// Reset the communication statistics.
    fn reset_metrics(&mut self);

    /// Snapshot of everything S2 observed beyond its inputs.
    fn s2_ledger(&self) -> LeakageLedger;

    /// Clear S2's ledger and per-session protocol state.
    fn reset_s2(&mut self);

    /// Which implementation this is.
    fn kind(&self) -> TransportKind;

    /// The simulated link profile the transport runs over.  Dedicated transports run on
    /// an ideal link; the multiplexed transport reports the RTT it was connected with,
    /// which is what the adaptive query planner feeds into the §11 cost model.
    fn link(&self) -> LinkProfile {
        LinkProfile::ideal()
    }

    /// Transport-level faults this connection absorbed without surfacing an error to
    /// the caller: reconnect-and-resume cycles after a dropped connection and shed
    /// requests retried to success.  Zero for transports that cannot fault (the
    /// in-process, threaded and multiplexed paths); the TCP transport counts every
    /// absorbed fault so serving reports can separate "queries that failed" from
    /// "faults that were retried away".
    fn faults_absorbed(&self) -> u64 {
        0
    }

    /// Install client-side metric handles from `registry` (see
    /// [`sectopk_metrics::Registry`]).  Default: no instrumentation — only the TCP
    /// transport currently reports client-side metrics (`tcp.client.*`).  Never
    /// affects protocol bytes, ledgers or [`ChannelMetrics`].
    fn set_metrics_registry(&mut self, _registry: &sectopk_metrics::Registry) {}
}

/// Surface an `S2Response::Error` frame as the [`ProtocolError::Remote`] every
/// transport implementation maps it to.
pub(crate) fn response_or_error(response: S2Response) -> Result<S2Response> {
    match response {
        S2Response::Error(e) => Err(ProtocolError::Remote(e)),
        other => Ok(other),
    }
}

// ====================================================================================
// In-process transport
// ====================================================================================

/// The fast path: the request value is handed to S2's engine directly — nothing is
/// serialized for transfer or deserialized on arrival.  Messages are still metered at
/// their exact wire-encoded size via [`wire::encoded_len`] so the bandwidth figures
/// match the threaded transport byte for byte; that metering does lower each message
/// into a transient value tree, a cost that is negligible next to the Paillier /
/// Damgård–Jurik arithmetic dominating every exchange.
pub struct InProcessTransport {
    engine: S2Engine,
    metrics: ChannelMetrics,
}

impl InProcessTransport {
    /// Wrap an S2 engine.
    pub fn new(engine: S2Engine) -> Self {
        InProcessTransport { engine, metrics: ChannelMetrics::new() }
    }
}

impl fmt::Debug for InProcessTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InProcessTransport").field("metrics", &self.metrics).finish()
    }
}

impl Transport for InProcessTransport {
    fn round_trip(&mut self, request: S1Request) -> Result<S2Response> {
        self.metrics.record(
            Direction::S1ToS2,
            wire::encoded_len(&request),
            request.ciphertext_count(),
        );
        // Engine failures become an `S2Response::Error` frame exactly as on the
        // threaded transport, so the reply is metered identically on both
        // implementations and the caller sees the same `ProtocolError::Remote` either
        // way.
        let response = self.engine.handle(&request).unwrap_or_else(S2Response::Error);
        self.metrics.record(
            Direction::S2ToS1,
            wire::encoded_len(&response),
            response.ciphertext_count(),
        );
        response_or_error(response)
    }

    fn metrics(&self) -> ChannelMetrics {
        self.metrics
    }

    fn reset_metrics(&mut self) {
        self.metrics = ChannelMetrics::new();
    }

    fn s2_ledger(&self) -> LeakageLedger {
        self.engine.ledger().clone()
    }

    fn reset_s2(&mut self) {
        self.engine.reset();
    }

    fn kind(&self) -> TransportKind {
        TransportKind::InProcess
    }
}

// ====================================================================================
// Threaded channel transport
// ====================================================================================

/// Frame tags of the byte channel (one leading tag byte, then the wire-encoded payload).
/// Shared with the session-multiplexing transport (`crate::multiplex`), whose envelopes
/// carry exactly these frames prefixed by a session id.
pub(crate) mod frame {
    /// S1 → S2: a protocol request (payload: [`super::S1Request`]).
    pub const REQUEST: u8 = 0;
    /// S1 → S2: fetch S2's ledger snapshot (control plane, unmetered).
    pub const FETCH_LEDGER: u8 = 1;
    /// S1 → S2: clear S2's ledger and session state (control plane, unmetered).
    pub const RESET: u8 = 2;
    /// S1 → S2: terminate the S2 thread (multiplex: one worker of the pool).
    pub const SHUTDOWN: u8 = 3;
    /// S1 → S2 (multiplex only): close one session, dropping its server-side state.
    pub const DISCONNECT: u8 = 4;
    /// S2 → S1: a protocol response (payload: [`super::S2Response`]).
    pub const RESPONSE: u8 = 16;
    /// S2 → S1: the requested ledger snapshot.
    pub const LEDGER: u8 = 17;
    /// S2 → S1: acknowledgement of a reset.
    pub const RESET_DONE: u8 = 18;
    /// S2 → S1 (multiplex only): acknowledgement of a session disconnect.  Makes
    /// teardown synchronous, so a session id can be reused the moment its previous
    /// owner is dropped.
    pub const DISCONNECT_DONE: u8 = 19;
}

/// The threaded transport: S2's engine runs on a dedicated thread with no shared state;
/// every protocol message is serialized to bytes, shipped over an `mpsc` pair, and
/// deserialized on the far side.
pub struct ChannelTransport {
    to_s2: mpsc::Sender<Vec<u8>>,
    from_s2: mpsc::Receiver<Vec<u8>>,
    worker: Option<JoinHandle<()>>,
    metrics: ChannelMetrics,
}

impl ChannelTransport {
    /// Spawn the S2 thread around `engine`.
    pub fn new(mut engine: S2Engine) -> Self {
        let (to_s2, s2_inbox) = mpsc::channel::<Vec<u8>>();
        let (s2_outbox, from_s2) = mpsc::channel::<Vec<u8>>();
        let worker = std::thread::spawn(move || {
            while let Ok(incoming) = s2_inbox.recv() {
                let Some((&tag, payload)) = incoming.split_first() else {
                    continue;
                };
                let reply: Vec<u8> = match tag {
                    frame::REQUEST => {
                        let response = match wire::from_bytes::<S1Request>(payload) {
                            Ok(request) => {
                                engine.handle(&request).unwrap_or_else(S2Response::Error)
                            }
                            Err(e) => S2Response::Error(WireError::codec(format!(
                                "undecodable request: {e}"
                            ))),
                        };
                        framed(frame::RESPONSE, &response)
                    }
                    frame::FETCH_LEDGER => framed(frame::LEDGER, engine.ledger()),
                    frame::RESET => {
                        engine.reset();
                        vec![frame::RESET_DONE]
                    }
                    frame::SHUTDOWN => break,
                    _ => framed(frame::RESPONSE, &S2Response::Error(WireError::unknown_frame(tag))),
                };
                if s2_outbox.send(reply).is_err() {
                    break; // S1 hung up.
                }
            }
        });
        ChannelTransport { to_s2, from_s2, worker: Some(worker), metrics: ChannelMetrics::new() }
    }

    fn control(&self, tag: u8, expected_reply: u8) -> Result<Vec<u8>> {
        self.to_s2.send(vec![tag]).map_err(|_| ProtocolError::transport("S2 thread is gone"))?;
        let reply =
            self.from_s2.recv().map_err(|_| ProtocolError::transport("S2 thread hung up"))?;
        match reply.split_first() {
            Some((&t, payload)) if t == expected_reply => Ok(payload.to_vec()),
            _ => Err(ProtocolError::transport("unexpected control reply from S2")),
        }
    }
}

/// Prefix the wire encoding of `payload` with a frame tag byte (shared with the
/// multiplexed transport, whose envelopes carry exactly these frames).
pub(crate) fn framed<T: Serialize>(tag: u8, payload: &T) -> Vec<u8> {
    let body = wire::to_bytes(payload);
    let mut out = Vec::with_capacity(1 + body.len());
    out.push(tag);
    out.extend_from_slice(&body);
    out
}

impl fmt::Debug for ChannelTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelTransport").field("metrics", &self.metrics).finish()
    }
}

impl Transport for ChannelTransport {
    fn round_trip(&mut self, request: S1Request) -> Result<S2Response> {
        let outgoing = framed(frame::REQUEST, &request);
        // Metered size = payload only (the tag byte is local framing, not the message).
        self.metrics.record(Direction::S1ToS2, outgoing.len() - 1, request.ciphertext_count());
        self.to_s2.send(outgoing).map_err(|_| ProtocolError::transport("S2 thread is gone"))?;
        let incoming =
            self.from_s2.recv().map_err(|_| ProtocolError::transport("S2 thread hung up"))?;
        let payload = match incoming.split_first() {
            Some((&frame::RESPONSE, payload)) => payload,
            _ => return Err(ProtocolError::transport("unexpected reply frame from S2")),
        };
        let response: S2Response = wire::from_bytes(payload)
            .map_err(|e| ProtocolError::transport(format!("undecodable response: {e}")))?;
        self.metrics.record(Direction::S2ToS1, payload.len(), response.ciphertext_count());
        response_or_error(response)
    }

    fn metrics(&self) -> ChannelMetrics {
        self.metrics
    }

    fn reset_metrics(&mut self) {
        self.metrics = ChannelMetrics::new();
    }

    fn s2_ledger(&self) -> LeakageLedger {
        // A dead S2 thread must surface loudly: returning an empty ledger here would
        // let "S2 saw nothing but X" assertions pass vacuously.
        let payload = self
            .control(frame::FETCH_LEDGER, frame::LEDGER)
            .expect("S2 thread unavailable while fetching its ledger");
        wire::from_bytes(&payload).expect("undecodable S2 ledger snapshot")
    }

    fn reset_s2(&mut self) {
        self.control(frame::RESET, frame::RESET_DONE)
            .expect("S2 thread unavailable while resetting its state");
    }

    fn kind(&self) -> TransportKind {
        TransportKind::Channel
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        let _ = self.to_s2.send(vec![frame::SHUTDOWN]);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::keys::MasterKeys;
    use sectopk_crypto::paillier::{generate_keypair, MIN_MODULUS_BITS};

    fn engine(seed: u64) -> (MasterKeys, S2Engine) {
        let mut rng = StdRng::seed_from_u64(seed);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).unwrap();
        let (own_pk, _own_sk) = generate_keypair(MIN_MODULUS_BITS, &mut rng).unwrap();
        let engine = S2Engine::new(master.s2_view(), own_pk, seed ^ 0x5252_5252_5252_5252);
        (master, engine)
    }

    fn compare_request(master: &MasterKeys, value: i64, rng: &mut StdRng) -> S1Request {
        let pk = &master.paillier_public;
        S1Request::Compare {
            blinded: vec![pk.encrypt_i64(value, rng).unwrap()],
            context: "test".into(),
        }
    }

    #[test]
    fn both_transports_answer_identically_and_meter_identically() {
        let (master, eng_a) = engine(9);
        let (_, eng_b) = engine(9);
        let mut in_process = InProcessTransport::new(eng_a);
        let mut channel = ChannelTransport::new(eng_b);

        let mut rng = StdRng::seed_from_u64(1);
        let req = compare_request(&master, -5, &mut rng);
        let a = in_process.round_trip(req.clone()).unwrap();
        let b = channel.round_trip(req).unwrap();
        match (&a, &b) {
            (S2Response::Signs(sa), S2Response::Signs(sb)) => {
                assert_eq!(sa, sb);
                assert_eq!(sa, &vec![-1i8]);
            }
            other => panic!("unexpected responses {other:?}"),
        }
        assert_eq!(in_process.metrics(), channel.metrics());
        assert_eq!(in_process.metrics().rounds, 1);
        assert_eq!(in_process.s2_ledger().events(), channel.s2_ledger().events());
    }

    #[test]
    fn batch_is_one_round() {
        let (master, eng) = engine(10);
        let mut transport = InProcessTransport::new(eng);
        let mut rng = StdRng::seed_from_u64(2);
        let reqs: Vec<S1Request> =
            (0..4).map(|i| compare_request(&master, i - 2, &mut rng)).collect();
        let response = transport.round_trip(S1Request::Batch(reqs)).unwrap();
        match response {
            S2Response::Batch(replies) => assert_eq!(replies.len(), 4),
            other => panic!("expected Batch, got {other:?}"),
        }
        assert_eq!(transport.metrics().rounds, 1);
    }

    #[test]
    fn control_plane_is_unmetered_and_reset_clears_the_ledger() {
        let (master, eng) = engine(11);
        let mut transport = ChannelTransport::new(eng);
        let mut rng = StdRng::seed_from_u64(3);
        transport.round_trip(compare_request(&master, 1, &mut rng)).unwrap();
        let metered = transport.metrics();
        assert!(!transport.s2_ledger().is_empty());
        assert_eq!(transport.metrics(), metered, "ledger fetch must not count as traffic");
        transport.reset_s2();
        assert!(transport.s2_ledger().is_empty());
    }

    #[test]
    fn engine_errors_surface_as_protocol_errors() {
        let (_master, eng) = engine(12);
        let mut transport = ChannelTransport::new(eng);
        use crate::wire::WireErrorCode;
        // An EqAggregate with no accumulated bits is a sequencing violation.
        let err = transport
            .round_trip(S1Request::EqAggregate { rows: 2, cols: 2, want: EqWants::none() })
            .unwrap_err();
        assert!(
            matches!(&err, ProtocolError::Remote(e) if e.code == WireErrorCode::BadSequence),
            "unexpected error {err:?}"
        );
        // A zero-column matrix is structurally malformed (would divide by zero in the
        // aggregate derivation).
        let err = transport
            .round_trip(S1Request::EqAggregate { rows: 0, cols: 0, want: EqWants::none() })
            .unwrap_err();
        assert!(
            matches!(&err, ProtocolError::Remote(e) if e.code == WireErrorCode::MalformedRequest),
            "unexpected error {err:?}"
        );
        // The engine survives both rejections: the thread is still serving requests.
        assert!(transport.s2_ledger().is_empty());
    }

    #[test]
    fn transport_kind_env_parsing() {
        assert_eq!(TransportKind::parse(Some("channel")), TransportKind::Channel);
        assert_eq!(TransportKind::parse(Some("CHANNEL")), TransportKind::Channel);
        assert_eq!(TransportKind::parse(Some("thread")), TransportKind::Channel);
        assert_eq!(TransportKind::parse(Some("multiplex")), TransportKind::Multiplex);
        assert_eq!(TransportKind::parse(Some("MUX")), TransportKind::Multiplex);
        assert_eq!(TransportKind::parse(Some("inprocess")), TransportKind::InProcess);
        assert_eq!(TransportKind::parse(Some("garbage")), TransportKind::InProcess);
        assert_eq!(TransportKind::parse(None), TransportKind::InProcess);
    }
}
