//! Session-multiplexed serving: one crypto-cloud S2 worker pool answering many
//! concurrent S1 sessions over a single byte channel.
//!
//! # Why sessions
//!
//! The paper's deployment (§3.2) is a *service*: the primary cloud S1 answers top-k
//! queries for many independent clients, using the crypto cloud S2 as a co-processor.
//! [`crate::transport::ChannelTransport`] models one S1 talking to one dedicated S2
//! thread; this module generalises it to the served workload — a [`MultiplexServer`]
//! owns a pool of S2 worker threads and a registry of per-session state, and every
//! connected [`MultiplexTransport`] is one S1 session:
//!
//! ```text
//!   session 1  S1 ──┐                               ┌── worker 1 ──┐
//!   session 2  S1 ──┤   Envelope{session, seq,      ├── worker 2 ──┤   per-session
//!   session 3  S1 ──┼──  frame bytes}  ───────────▶ ├── …          ├─▶ S2Engine
//!      …            │   shared mpsc byte channel    └── worker W ──┘   (keys shared
//!   session N  S1 ──┘                                                   behind Arc)
//!        ▲                                                 │
//!        └──────────── per-session reply channel ◀─────────┘
//! ```
//!
//! # Isolation and determinism
//!
//! Each session owns an [`S2Engine`] of its own (behind a `Mutex`, because any worker
//! may pick up its next request): its leakage ledger, accumulated equality bits, RNG
//! and nonce-pool shards are **per session**, so
//!
//! * ledgers never bleed between sessions — "what did S2 observe while serving client
//!   *i*" stays a well-defined question under concurrency, and
//! * every session's ciphertext stream is a deterministic function of its own seed
//!   ([`sectopk_crypto::pool::shard_seed`] decorrelates the shards), which makes *N*
//!   sessions served concurrently byte-identical to the same *N* sessions served one
//!   after another (asserted by `tests/concurrent_sessions.rs`).
//!
//! The engines share the key material (`S2Keys` is `Arc`-backed, so worker threads
//! share one copy of the moduli and Montgomery contexts), but no mutable state.
//!
//! Because a session's client blocks on [`Transport::round_trip`], at most one request
//! per session is in flight: workers never contend on a session's engine, only on the
//! shared inbox.
//!
//! # Wire envelope
//!
//! Every message on the multiplexed channel is an [`Envelope`]: a fixed 16-byte header
//! (session id and sequence number, both little-endian `u64`) followed by the same
//! tag-plus-payload frame [`crate::transport::ChannelTransport`] ships.  The server
//! echoes the header on the reply, and the transport verifies the echo, so a response
//! can never be attributed to the wrong session or request.  Metering counts the
//! payload only (headers and tags are local framing, exactly as on the other
//! transports), which keeps [`crate::channel::ChannelMetrics`] byte-identical across
//! all three transport implementations.
//!
//! # Simulated link
//!
//! A [`LinkProfile`] optionally adds a per-round-trip RTT on the client side, modelling
//! the inter-cloud WAN of §11.2.5 (the paper assumes a 50 Mbps link between S1 and S2).
//! Under a latency-bound link, session multiplexing is what buys aggregate throughput:
//! while one session waits out its RTT, the worker pool serves the others.  The
//! `throughput` bench sweeps exactly this.
//!
//! # Fault tolerance: the session slot lifecycle
//!
//! A session's engine state (ledger, nonce shards, pending equality bits) must survive
//! the *connection* that carries its envelopes — the TCP listener parks a dropped
//! connection's slot and a resuming client reattaches to it:
//!
//! ```text
//!              attach()                    connection drops
//!   (free) ──────────────▶ ACTIVE ─────────────────────────────▶ PARKED
//!                            ▲                                   │    │
//!                            │            reattach()             │    │ TTL expires /
//!                            └───────────────────────────────────┘    │ drain
//!                                    (RESUMED: same slot,             ▼
//!                                     fresh reply channel)         EXPIRED
//!                                                              (DISCONNECT reaps
//!                                                               the slot; id free)
//! ```
//!
//! Exactly-once across the drop is guaranteed by a per-slot **last-reply cache**: every
//! request reply is remembered under its sequence number, and a retried `seq` (the
//! resumed client re-sending the envelope it never saw answered) is served from the
//! cache *without re-executing* — the engine's ledger and nonce streams advance exactly
//! once no matter how many times the frame is delivered.  The strict one-in-flight
//! discipline means a one-deep cache suffices.
//!
//! # Admission control
//!
//! [`PoolLimits`] bounds the pool: `max_sessions` caps the registry, and
//! `session_queue_depth` bounds each session's share of the shared inbox.  Work beyond
//! either bound is *shed* — rejected with a typed
//! [`WireErrorCode::Overloaded`](crate::wire::WireErrorCode) frame before touching any
//! engine state — so overload degrades into clean, retryable refusals instead of
//! unbounded queueing.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sectopk_metrics::{Counter, Histogram, Registry as MetricsRegistry};
use serde::{Deserialize, Serialize};

use crate::channel::{ChannelMetrics, Direction};
use crate::engine::S2Engine;
use crate::error::{ProtocolError, Result};
use crate::ledger::LeakageLedger;
use crate::plock::PoisonFree;
use crate::transport::{
    frame, framed, response_or_error, S1Request, S2Response, Transport, TransportKind,
};
use crate::wire;
use crate::wire::WireError;

/// Identifier of one S1 session on a multiplexed channel.  Chosen by the serving layer
/// (e.g. densely numbered client connections); must be unique per [`MultiplexServer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Bytes of the fixed envelope header: session id + sequence number, both `u64` LE.
pub const ENVELOPE_HEADER_LEN: usize = 16;

/// One message on the multiplexed byte channel: the session id, the sender's sequence
/// number (echoed verbatim on replies), and the tag-plus-payload frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Which session this frame belongs to.
    pub session: SessionId,
    /// Request counter within the session; replies echo the request's value.
    pub seq: u64,
    /// Frame bytes: one tag byte (see `transport::frame`) followed by the wire payload.
    pub frame: Vec<u8>,
}

impl Envelope {
    /// Encode header + frame into channel bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ENVELOPE_HEADER_LEN + self.frame.len());
        out.extend_from_slice(&self.session.0.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.frame);
        out
    }

    /// Decode channel bytes back into an envelope.  The frame may be empty only for
    /// control messages that carry no tag; protocol traffic always has at least a tag.
    pub fn decode(bytes: &[u8]) -> Result<Envelope> {
        let Some((session, rest)) = bytes.split_first_chunk::<8>() else {
            return Err(ProtocolError::transport("truncated multiplex envelope"));
        };
        let Some((seq, frame)) = rest.split_first_chunk::<8>() else {
            return Err(ProtocolError::transport("truncated multiplex envelope"));
        };
        Ok(Envelope {
            session: SessionId(u64::from_le_bytes(*session)),
            seq: u64::from_le_bytes(*seq),
            frame: frame.to_vec(),
        })
    }
}

/// Characteristics of the simulated S1 ↔ S2 link.  [`LinkProfile::ideal`] (the default)
/// adds nothing; a nonzero RTT makes every protocol round trip cost that much
/// wall-clock on the client side, modelling the WAN between the two clouds.  Metrics
/// and ledgers are unaffected — only latency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkProfile {
    /// Round-trip time added to every protocol round trip (control traffic excluded).
    pub rtt: Duration,
}

impl LinkProfile {
    /// A zero-latency link (requests cost only their compute).
    pub fn ideal() -> Self {
        Self::default()
    }

    /// A link with the given round-trip time in milliseconds.
    pub fn with_rtt_ms(rtt_ms: u64) -> Self {
        LinkProfile { rtt: Duration::from_millis(rtt_ms) }
    }
}

/// Depth of each session's bounded reply queue.  The protocol is strictly
/// request/reply (a client or gateway bridge holds at most one envelope in flight per
/// session), so the queue never fills in correct operation; the bound is backpressure —
/// a worker facing a stalled session blocks instead of buffering replies without limit.
const REPLY_QUEUE_DEPTH: usize = 2;

/// Default per-session inbox bound (see [`PoolLimits::session_queue_depth`]): one
/// in-flight request, one duplicate from a resumed client's retry, plus slack for
/// control traffic.
const DEFAULT_SESSION_QUEUE_DEPTH: usize = 4;

/// Admission-control bounds of a [`MultiplexServer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolLimits {
    /// Maximum number of simultaneously registered sessions (attachment beyond this is
    /// shed with a typed overload rejection).
    pub max_sessions: usize,
    /// Maximum envelopes one session may have waiting in the shared
    /// inbox; submissions beyond it are shed with a
    /// [`WireErrorCode::Overloaded`](crate::wire::WireErrorCode) error frame instead of
    /// queueing without bound.
    pub session_queue_depth: usize,
}

impl Default for PoolLimits {
    fn default() -> Self {
        PoolLimits { max_sessions: usize::MAX, session_queue_depth: DEFAULT_SESSION_QUEUE_DEPTH }
    }
}

/// Pool-wide fault-tolerance counters (monotonic, observability only — never part of
/// the protocol state).
#[derive(Debug, Default)]
struct PoolStats {
    /// Replies served from a session's last-reply cache instead of re-execution.
    replayed: AtomicU64,
    /// Submissions shed because a session exceeded its inbox bound.
    shed: AtomicU64,
    /// Envelopes submitted to the shared inbox and not yet picked up by a worker.
    /// Approximate under teardown (shutdown frames are uncounted, decrements
    /// saturate); used only to sample inbox depth into the metrics histogram.
    pending: AtomicUsize,
}

/// Cached metric handles for the pool-level counters (see [`sectopk_metrics`]).  All
/// handles are no-ops when the server was built without a registry, so the hot path
/// pays one branch per event and the deterministic [`PoolStats`] stay the source of
/// truth either way.
#[derive(Clone, Debug, Default)]
struct PoolMetrics {
    /// Mirrors [`PoolStats::shed`] (`pool.shed`).
    shed: Counter,
    /// Mirrors [`PoolStats::replayed`] (`pool.replayed`).
    replayed: Counter,
    /// Sessions registered through [`MultiplexServer::attach`] (`pool.attached`).
    attached: Counter,
    /// Parked sessions taken over through [`MultiplexServer::reattach`]
    /// (`pool.reattached`).
    reattached: Counter,
    /// Sessions reaped through [`MultiplexServer::evict`] (`pool.evicted`).
    evicted: Counter,
    /// Inbox depth sampled at each submission (`pool.inbox_depth`).
    inbox_depth: Histogram,
}

impl PoolMetrics {
    fn from_registry(registry: &MetricsRegistry) -> Self {
        PoolMetrics {
            shed: registry.counter("pool.shed"),
            replayed: registry.counter("pool.replayed"),
            attached: registry.counter("pool.attached"),
            reattached: registry.counter("pool.reattached"),
            evicted: registry.counter("pool.evicted"),
            inbox_depth: registry.histogram("pool.inbox_depth"),
        }
    }
}

/// Per-session server-side state: the session's own engine (ledger, RNG, pool shards,
/// accumulated equality bits), the bounded channel its replies travel back on, the
/// count of submitted-but-not-yet-picked-up envelopes, and the last-reply cache that
/// makes
/// retried sequence numbers idempotent.
struct SessionSlot {
    /// Unique per *attachment* (not per session id): every inbox message is tagged
    /// with the epoch of the slot it was submitted through, and a worker drops
    /// messages whose epoch disagrees with the registered slot's.  Without this, a
    /// duplicate envelope lingering in the shared inbox past a session's teardown —
    /// e.g. a resumed client's re-send whose original was still queued — could be
    /// routed to a *new* session that re-attached under the same id, executing on the
    /// wrong engine and corrupting its inflight accounting.
    epoch: u64,
    engine: Mutex<S2Engine>,
    /// Swapped by [`MultiplexServer::reattach`] when a resumed connection takes over
    /// the session — the engine and cache survive, only the reply path changes.
    replies: Mutex<mpsc::SyncSender<Vec<u8>>>,
    /// Envelopes submitted through [`SessionConduit::submit`] and not yet answered.
    inflight: AtomicUsize,
    /// `(seq, encoded reply envelope)` of the most recent request reply.  A re-sent
    /// `seq` is answered from here without touching the engine (exactly-once effects).
    last_reply: Mutex<Option<(u64, Vec<u8>)>>,
}

impl SessionSlot {
    /// Send `bytes` down the session's *current* reply channel (best effort: a send
    /// failure means the session's client hung up and the reply is dropped).
    fn send_reply(&self, bytes: Vec<u8>) {
        let replies = self.replies.plock().clone();
        let _ = replies.send(bytes);
    }
}

/// Why a submission was refused by [`SessionConduit::submit`].
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum SubmitError {
    /// The session already has `session_queue_depth` envelopes waiting in the inbox.
    QueueFull,
    /// The server (and its inbox) is gone.
    ServerGone,
}

/// Raw channel endpoints of one registered session: the shared server inbox plus the
/// session's private reply queue.  Gateway bridges (the TCP listener's per-connection
/// threads) forward envelope bytes through these; local in-process clients use the
/// [`MultiplexTransport`] built on the same endpoints by [`MultiplexServer::connect`].
pub(crate) struct SessionConduit {
    pub(crate) to_server: mpsc::Sender<Vec<u8>>,
    pub(crate) from_server: mpsc::Receiver<Vec<u8>>,
    slot: Arc<SessionSlot>,
    queue_depth: usize,
    stats: Arc<PoolStats>,
    metrics: PoolMetrics,
}

impl SessionConduit {
    /// Submit one encoded envelope, enforcing the session's inbox bound.  DISCONNECT
    /// frames must go through [`SessionConduit::disconnect`] instead — teardown is
    /// never shed.
    pub(crate) fn submit(&self, bytes: Vec<u8>) -> std::result::Result<(), SubmitError> {
        let previous = self.slot.inflight.fetch_add(1, Ordering::SeqCst);
        if previous >= self.queue_depth {
            self.slot.inflight.fetch_sub(1, Ordering::SeqCst);
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            self.metrics.shed.incr();
            return Err(SubmitError::QueueFull);
        }
        self.to_server.send(tag_epoch(self.slot.epoch, &bytes)).map_err(|_| {
            self.slot.inflight.fetch_sub(1, Ordering::SeqCst);
            SubmitError::ServerGone
        })?;
        let depth = self.stats.pending.fetch_add(1, Ordering::Relaxed) + 1;
        self.metrics.inbox_depth.observe(depth as u64);
        Ok(())
    }

    /// Submit a teardown envelope, bypassing the inbox bound (reaping a session frees
    /// capacity and must never be refused for lack of it).
    pub(crate) fn disconnect(&self, bytes: Vec<u8>) -> std::result::Result<(), SubmitError> {
        self.to_server
            .send(tag_epoch(self.slot.epoch, &bytes))
            .map_err(|_| SubmitError::ServerGone)?;
        self.stats.pending.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// Prefix an encoded envelope with the epoch of the slot it is being submitted
/// through; [`worker_loop`] strips and checks it (see [`SessionSlot::epoch`]).
fn tag_epoch(epoch: u64, bytes: &[u8]) -> Vec<u8> {
    let mut tagged = Vec::with_capacity(8 + bytes.len());
    tagged.extend_from_slice(&epoch.to_le_bytes());
    tagged.extend_from_slice(bytes);
    tagged
}

type Registry = Arc<Mutex<HashMap<SessionId, Arc<SessionSlot>>>>;

/// The crypto cloud S2 as a multi-session service: a worker-thread pool draining one
/// shared byte channel, routing each [`Envelope`] to its session's engine.
pub struct MultiplexServer {
    inbox: mpsc::Sender<Vec<u8>>,
    registry: Registry,
    workers: Vec<JoinHandle<()>>,
    limits: PoolLimits,
    stats: Arc<PoolStats>,
    metrics: PoolMetrics,
    metrics_registry: MetricsRegistry,
    /// Source of [`SessionSlot::epoch`] values; each attachment gets a fresh one.
    epochs: AtomicU64,
}

impl fmt::Debug for MultiplexServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiplexServer")
            .field("workers", &self.workers.len())
            .field("active_sessions", &self.active_sessions())
            .finish()
    }
}

/// Why [`MultiplexServer::attach`] refused a session (the engine is handed back so the
/// caller can retry without rebuilding it).
#[derive(Debug)]
pub(crate) struct AttachError {
    pub(crate) engine: S2Engine,
    pub(crate) reason: AttachReason,
}

/// Refusal class of an [`AttachError`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AttachReason {
    /// The session id is already registered.
    InUse,
    /// The session table is at [`PoolLimits::max_sessions`] — a transient overload.
    Full,
}

impl MultiplexServer {
    /// Spawn a server with `workers` S2 worker threads (at least one) and no admission
    /// bounds beyond the [`PoolLimits`] defaults.
    pub fn new(workers: usize) -> Self {
        Self::with_limits(workers, PoolLimits::default())
    }

    /// Spawn a server with `workers` S2 worker threads (at least one) and explicit
    /// admission-control bounds.
    pub fn with_limits(workers: usize, limits: PoolLimits) -> Self {
        Self::with_limits_and_metrics(workers, limits, MetricsRegistry::disabled())
    }

    /// Spawn a server that additionally reports into `metrics_registry` (see
    /// [`sectopk_metrics::Registry`]): pool counters (`pool.shed`, `pool.replayed`,
    /// `pool.attached`, `pool.reattached`, `pool.evicted`), an inbox-depth histogram
    /// (`pool.inbox_depth`), per-worker busy-time histograms
    /// (`pool.worker.{i}.busy_nanos`), and every attached session engine's request
    /// counters.  A disabled registry makes every instrument a no-op; either way the
    /// protocol bytes, ledgers and [`ChannelMetrics`] are unaffected.
    pub fn with_limits_and_metrics(
        workers: usize,
        limits: PoolLimits,
        metrics_registry: MetricsRegistry,
    ) -> Self {
        let workers = workers.max(1);
        let limits = PoolLimits {
            max_sessions: limits.max_sessions.max(1),
            session_queue_depth: limits.session_queue_depth.max(1),
        };
        let (inbox, rx) = mpsc::channel::<Vec<u8>>();
        let shared_rx = Arc::new(Mutex::new(rx));
        let registry: Registry = Arc::new(Mutex::new(HashMap::new()));
        let stats = Arc::new(PoolStats::default());
        let metrics = PoolMetrics::from_registry(&metrics_registry);
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&shared_rx);
                let registry = Arc::clone(&registry);
                let stats = Arc::clone(&stats);
                let pool_metrics = metrics.clone();
                let busy = metrics_registry.histogram(&format!("pool.worker.{i}.busy_nanos"));
                std::thread::Builder::new()
                    .name(format!("sectopk-s2-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &registry, &stats, &pool_metrics, &busy))
                    .expect("spawn S2 worker thread")
            })
            .collect();
        MultiplexServer {
            inbox,
            registry,
            workers: handles,
            limits,
            stats,
            metrics,
            metrics_registry,
            epochs: AtomicU64::new(0),
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of currently connected sessions.
    pub fn active_sessions(&self) -> usize {
        self.registry.plock().len()
    }

    /// The admission-control bounds this pool runs under.
    pub fn limits(&self) -> PoolLimits {
        self.limits
    }

    /// Replies served from a session's last-reply cache instead of re-executing the
    /// request — each one is a retry made idempotent.
    pub fn replayed_replies(&self) -> u64 {
        self.stats.replayed.load(Ordering::Relaxed)
    }

    /// Submissions shed because a session exceeded its inbox bound.
    pub fn shed_requests(&self) -> u64 {
        self.stats.shed.load(Ordering::Relaxed)
    }

    /// The metrics registry this pool reports into.  Disabled (all instruments no-ops)
    /// unless the server was built with [`MultiplexServer::with_limits_and_metrics`];
    /// snapshot it at any time with [`sectopk_metrics::Registry::snapshot`].
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.metrics_registry
    }

    /// Register `session` backed by `engine` and hand back the S1-side transport for
    /// it.  The engine carries the session's seed (and thereby its deterministic pool
    /// shards); build it with [`sectopk_crypto::pool::shard_seed`]-derived seeds when
    /// serving many sessions from one base seed.  Fails if the id is already connected
    /// or the session table is full.
    pub fn connect(
        &self,
        session: SessionId,
        engine: S2Engine,
        link: LinkProfile,
    ) -> Result<MultiplexTransport> {
        let conduit = self.attach(session, engine).map_err(|e| match e.reason {
            AttachReason::InUse => {
                ProtocolError::transport_rejected(format!("{session} is already connected"))
            }
            AttachReason::Full => ProtocolError::transport_overloaded(format!(
                "session table full ({} sessions)",
                self.limits.max_sessions
            )),
        })?;
        Ok(MultiplexTransport {
            session,
            seq: 0,
            conduit,
            link,
            metrics: ChannelMetrics::new(),
            private_server: None,
        })
    }

    /// Drop `session`'s slot from the registry immediately — the TCP listener's
    /// reaping path for dead or expired connections.  Safe to call only while no new
    /// attachment of the same id can exist (which holds for every listener call site:
    /// a fresh hello cannot claim an id while it is still registered).  A worker
    /// mid-request on the slot finishes against its own `Arc` and drops the reply.
    pub(crate) fn evict(&self, session: SessionId) {
        if self.registry.plock().remove(&session).is_some() {
            self.metrics.evicted.incr();
        }
    }

    /// Whether `session` is currently registered (active or parked — the pool does not
    /// distinguish; parking is the TCP listener's bookkeeping).
    pub(crate) fn has_session(&self, session: SessionId) -> bool {
        self.registry.plock().contains_key(&session)
    }

    /// Register `session` backed by `engine` and hand back the raw channel endpoints.
    /// On refusal the engine is handed back so the caller can retry under a different
    /// id (the TCP listener's session negotiation does exactly that).
    // The large Err *is* the point: the caller gets its engine back by value instead
    // of rebuilding it, and this is a cold, crate-internal path.
    #[allow(clippy::result_large_err)]
    pub(crate) fn attach(
        &self,
        session: SessionId,
        mut engine: S2Engine,
    ) -> std::result::Result<SessionConduit, AttachError> {
        let (reply_tx, reply_rx) = mpsc::sync_channel::<Vec<u8>>(REPLY_QUEUE_DEPTH);
        let mut registry = self.registry.plock();
        if registry.contains_key(&session) {
            return Err(AttachError { engine, reason: AttachReason::InUse });
        }
        if registry.len() >= self.limits.max_sessions {
            return Err(AttachError { engine, reason: AttachReason::Full });
        }
        // Every engine served by this pool reports into the pool's registry (request
        // counters, compute-time histograms); a disabled registry makes that a no-op.
        engine.set_metrics_registry(&self.metrics_registry);
        self.metrics.attached.incr();
        let slot = Arc::new(SessionSlot {
            epoch: 1 + self.epochs.fetch_add(1, Ordering::Relaxed),
            engine: Mutex::new(engine),
            replies: Mutex::new(reply_tx),
            inflight: AtomicUsize::new(0),
            last_reply: Mutex::new(None),
        });
        registry.insert(session, Arc::clone(&slot));
        Ok(SessionConduit {
            to_server: self.inbox.clone(),
            from_server: reply_rx,
            slot,
            queue_depth: self.limits.session_queue_depth,
            stats: Arc::clone(&self.stats),
            metrics: self.metrics.clone(),
        })
    }

    /// Take over an existing (parked) session: swap in a fresh reply channel and hand
    /// back conduit endpoints for the *same* slot — engine, ledger, nonce shards and
    /// last-reply cache all survive.  Returns `None` when the session is not
    /// registered (it was reaped, e.g. after its park TTL expired).
    pub(crate) fn reattach(&self, session: SessionId) -> Option<SessionConduit> {
        let registry = self.registry.plock();
        let slot = Arc::clone(registry.get(&session)?);
        let (reply_tx, reply_rx) = mpsc::sync_channel::<Vec<u8>>(REPLY_QUEUE_DEPTH);
        *slot.replies.plock() = reply_tx;
        self.metrics.reattached.incr();
        Some(SessionConduit {
            to_server: self.inbox.clone(),
            from_server: reply_rx,
            slot,
            queue_depth: self.limits.session_queue_depth,
            stats: Arc::clone(&self.stats),
            metrics: self.metrics.clone(),
        })
    }

    /// Drop `session`'s cached last reply if the client has already acknowledged it
    /// (`seq <= acked`): a resumed client that saw the reply will never re-send that
    /// sequence number, so the cache can be freed early.
    pub(crate) fn prune_replay(&self, session: SessionId, acked: u64) {
        let slot = {
            let registry = self.registry.plock();
            match registry.get(&session) {
                Some(slot) => Arc::clone(slot),
                None => return,
            }
        };
        let mut cached = slot.last_reply.plock();
        if let Some((seq, _)) = cached.as_ref() {
            if *seq <= acked {
                *cached = None;
            }
        }
    }
}

impl Drop for MultiplexServer {
    fn drop(&mut self) {
        // One shutdown envelope per worker; each worker exits on the first it sees.
        for _ in 0..self.workers.len() {
            let shutdown = Envelope { session: SessionId(0), seq: 0, frame: vec![frame::SHUTDOWN] };
            let _ = self.inbox.send(tag_epoch(0, &shutdown.encode()));
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Dropping the slots closes every session's reply channel, so a client still
        // blocked on a response sees a clean "server is gone" error instead of a hang.
        self.registry.plock().clear();
    }
}

/// One S2 worker: drain the shared inbox, route each envelope to its session.
fn worker_loop(
    rx: &Mutex<mpsc::Receiver<Vec<u8>>>,
    registry: &Registry,
    stats: &PoolStats,
    metrics: &PoolMetrics,
    busy: &Histogram,
) {
    loop {
        // Hold the inbox lock only for the dequeue, not while processing.
        let incoming = match rx.plock().recv() {
            Ok(bytes) => bytes,
            Err(_) => return, // every transport and the server handle are gone
        };
        // Saturating: shutdown frames bypass the conduits and are never counted in.
        let _ = stats
            .pending
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)));
        // Every inbox message is `[8-byte LE slot epoch][encoded envelope]` (see
        // `tag_epoch`); a message whose epoch disagrees with the registered slot is a
        // leftover from a previous life of the session id and must be dropped, not
        // routed — its inflight accounting belongs to the dead slot.
        let Some((epoch_bytes, envelope_bytes)) = incoming.split_first_chunk::<8>() else {
            continue;
        };
        let epoch = u64::from_le_bytes(*epoch_bytes);
        let Ok(envelope) = Envelope::decode(envelope_bytes) else {
            continue; // undecodable channel noise: nothing to route a reply to
        };
        let Some((&tag, payload)) = envelope.frame.split_first() else {
            continue;
        };
        if tag == frame::SHUTDOWN {
            return;
        }
        let slot = {
            let mut registry = registry.plock();
            if tag == frame::DISCONNECT {
                if registry.get(&envelope.session).is_some_and(|slot| slot.epoch == epoch) {
                    if let Some(slot) = registry.remove(&envelope.session) {
                        // Acknowledge so the departing client can block until its id is
                        // actually free for reuse.
                        let ack = Envelope {
                            session: envelope.session,
                            seq: envelope.seq,
                            frame: vec![frame::DISCONNECT_DONE],
                        };
                        slot.send_reply(ack.encode());
                    }
                }
                continue;
            }
            match registry.get(&envelope.session) {
                Some(slot) if slot.epoch == epoch => Arc::clone(slot),
                // Unknown session or a stale epoch (raced with a disconnect, or a
                // duplicate outliving its session's life): nothing to execute.
                _ => continue,
            }
        };
        // Release the inbox slot at pickup, not after the reply: `inflight` counts the
        // session's share of the *queue*.  Releasing after reply delivery would let a
        // compliant one-in-flight client be spuriously shed whenever worker decrements
        // lag behind reply sends; releasing here keeps the shed bound precise — a
        // session only hits it when its submissions genuinely outpace the pool (e.g.
        // its replies back up and block the workers).
        slot.inflight.fetch_sub(1, Ordering::SeqCst);
        let timer = busy.start();
        let mut engine = slot.engine.plock();
        let reply_bytes: Vec<u8> = match tag {
            frame::REQUEST => {
                // Replay check, under the engine lock so the cache and the execution
                // serialize: a re-delivered sequence number (a resumed client
                // re-sending the envelope it never saw answered, or a duplicate still
                // in the inbox) is answered from the cache without touching the
                // engine — ledger and nonce streams advance exactly once.
                let mut cached = slot.last_reply.plock();
                if let Some((_, bytes)) =
                    cached.as_ref().filter(|(seq, _)| envelope.seq != 0 && *seq == envelope.seq)
                {
                    let bytes = bytes.clone();
                    stats.replayed.fetch_add(1, Ordering::Relaxed);
                    metrics.replayed.incr();
                    bytes
                } else {
                    let response = match wire::from_bytes::<S1Request>(payload) {
                        Ok(request) => engine.handle(&request).unwrap_or_else(S2Response::Error),
                        Err(e) => {
                            S2Response::Error(WireError::codec(format!("undecodable request: {e}")))
                        }
                    };
                    let reply = Envelope {
                        session: envelope.session,
                        seq: envelope.seq,
                        frame: framed(frame::RESPONSE, &response),
                    }
                    .encode();
                    if envelope.seq != 0 {
                        *cached = Some((envelope.seq, reply.clone()));
                    }
                    reply
                }
            }
            frame::FETCH_LEDGER => Envelope {
                session: envelope.session,
                seq: envelope.seq,
                frame: framed(frame::LEDGER, engine.ledger()),
            }
            .encode(),
            frame::RESET => {
                engine.reset();
                Envelope {
                    session: envelope.session,
                    seq: envelope.seq,
                    frame: vec![frame::RESET_DONE],
                }
                .encode()
            }
            _ => Envelope {
                session: envelope.session,
                seq: envelope.seq,
                frame: framed(frame::RESPONSE, &S2Response::Error(WireError::unknown_frame(tag))),
            }
            .encode(),
        };
        drop(engine);
        busy.stop(timer);
        // A send failure means the session's client hung up; drop the reply.
        slot.send_reply(reply_bytes);
    }
}

/// The S1 side of one multiplexed session: a [`Transport`] whose frames travel inside
/// session-tagged envelopes to a shared [`MultiplexServer`].
pub struct MultiplexTransport {
    session: SessionId,
    seq: u64,
    conduit: SessionConduit,
    link: LinkProfile,
    metrics: ChannelMetrics,
    /// When the transport was created through [`TransportKind::Multiplex`] rather than
    /// by connecting to an explicit server, it owns a private single-worker server that
    /// must live (and shut down) with it.
    private_server: Option<Box<MultiplexServer>>,
}

impl fmt::Debug for MultiplexTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiplexTransport")
            .field("session", &self.session)
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl MultiplexTransport {
    /// A self-contained multiplexed transport: spins up a private single-worker
    /// [`MultiplexServer`] serving only this session.  This is what
    /// `SECTOPK_TRANSPORT=multiplex` uses, so the whole test suite can exercise the
    /// envelope path without managing a server.
    pub fn private(engine: S2Engine, link: LinkProfile) -> Result<Self> {
        let server = MultiplexServer::new(1);
        let mut transport = server.connect(SessionId(1), engine, link)?;
        transport.private_server = Some(Box::new(server));
        Ok(transport)
    }

    /// The session this transport speaks for.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Ship one frame under sequence number `seq` and wait for the server's reply,
    /// verifying the envelope echo.  Protocol traffic uses the transport's incrementing
    /// counter; control traffic uses the reserved `seq` 0.  Either way the client holds
    /// at most one request in flight, so the blocking receive always pairs correctly.
    ///
    /// `delay` is the simulated link RTT: it runs *between* the send and the receive,
    /// so it overlaps with S2's compute exactly as propagation overlaps with remote
    /// work on a real link.
    fn exchange_with_seq(
        &self,
        seq: u64,
        frame_bytes: Vec<u8>,
        delay: Duration,
    ) -> Result<Envelope> {
        let envelope = Envelope { session: self.session, seq, frame: frame_bytes };
        self.conduit.submit(envelope.encode()).map_err(|e| match e {
            // A compliant client holds one request in flight, so its own submissions
            // are only ever shed under a pathological queue-depth configuration; the
            // typed overload error keeps even that case retryable.
            SubmitError::QueueFull => ProtocolError::Remote(WireError::overloaded(format!(
                "{} inbox full, request shed",
                self.session
            ))),
            SubmitError::ServerGone => ProtocolError::transport_io("multiplex server is gone"),
        })?;
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        let incoming = self
            .conduit
            .from_server
            .recv()
            .map_err(|_| ProtocolError::transport_io("multiplex server hung up"))?;
        let reply = Envelope::decode(&incoming)?;
        if reply.session != self.session || reply.seq != seq {
            return Err(ProtocolError::transport(format!(
                "envelope echo mismatch: sent {}#{seq}, got {}#{}",
                self.session, reply.session, reply.seq
            )));
        }
        Ok(reply)
    }

    /// Ship one protocol frame under the next sequence number, over the simulated link.
    fn exchange(&mut self, frame_bytes: Vec<u8>) -> Result<Envelope> {
        self.seq += 1;
        self.exchange_with_seq(self.seq, frame_bytes, self.link.rtt)
    }

    /// One unmetered control-plane exchange (ledger fetch / reset), expecting a reply
    /// frame starting with `expected_reply`.  Control traffic skips the simulated link.
    fn control(&self, tag: u8, expected_reply: u8) -> Result<Vec<u8>> {
        let reply = self.exchange_with_seq(0, vec![tag], Duration::ZERO)?;
        match reply.frame.split_first() {
            Some((&t, payload)) if t == expected_reply => Ok(payload.to_vec()),
            _ => Err(ProtocolError::transport("unexpected control reply from S2")),
        }
    }
}

impl Transport for MultiplexTransport {
    fn round_trip(&mut self, request: S1Request) -> Result<S2Response> {
        let out_frame = framed(frame::REQUEST, &request);
        // Metered size = wire payload only; the tag byte and the 16-byte envelope
        // header are local framing, keeping metrics identical across transports.
        self.metrics.record(Direction::S1ToS2, out_frame.len() - 1, request.ciphertext_count());
        let reply = self.exchange(out_frame)?;
        let payload = match reply.frame.split_first() {
            Some((&frame::RESPONSE, payload)) => payload,
            _ => return Err(ProtocolError::transport("unexpected reply frame from S2")),
        };
        let response: S2Response = wire::from_bytes(payload)
            .map_err(|e| ProtocolError::transport(format!("undecodable response: {e}")))?;
        self.metrics.record(Direction::S2ToS1, payload.len(), response.ciphertext_count());
        response_or_error(response)
    }

    fn metrics(&self) -> ChannelMetrics {
        self.metrics
    }

    fn reset_metrics(&mut self) {
        self.metrics = ChannelMetrics::new();
    }

    fn s2_ledger(&self) -> LeakageLedger {
        // Control traffic is unmetered and skips the simulated link; like the threaded
        // transport, a dead server must fail loudly rather than return an empty ledger.
        let payload = self
            .control(frame::FETCH_LEDGER, frame::LEDGER)
            .expect("multiplex server unavailable while fetching the session ledger");
        wire::from_bytes(&payload).expect("undecodable S2 ledger snapshot")
    }

    fn reset_s2(&mut self) {
        self.control(frame::RESET, frame::RESET_DONE)
            .expect("multiplex server unavailable while resetting the session");
    }

    fn kind(&self) -> TransportKind {
        TransportKind::Multiplex
    }

    fn link(&self) -> LinkProfile {
        self.link
    }
}

impl Drop for MultiplexTransport {
    fn drop(&mut self) {
        let disconnect =
            Envelope { session: self.session, seq: self.seq + 1, frame: vec![frame::DISCONNECT] };
        if self.conduit.disconnect(disconnect.encode()).is_ok() {
            // Wait for the ack (or the channel closing) so the session id is free for
            // reuse the moment this drop returns; best effort if the server is gone.
            let _ = self.conduit.from_server.recv();
        }
        // A private server (if any) drops afterwards, joining its worker.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::keys::MasterKeys;
    use sectopk_crypto::paillier::{generate_keypair, MIN_MODULUS_BITS};
    use sectopk_crypto::pool::shard_seed;

    use crate::transport::ChannelTransport;

    fn master(seed: u64) -> MasterKeys {
        let mut rng = StdRng::seed_from_u64(seed);
        MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).unwrap()
    }

    fn engine_for(master: &MasterKeys, engine_seed: u64) -> S2Engine {
        let mut rng = StdRng::seed_from_u64(engine_seed ^ 0xABCD);
        let (own_pk, _own_sk) = generate_keypair(MIN_MODULUS_BITS, &mut rng).unwrap();
        S2Engine::new(master.s2_view(), own_pk, engine_seed)
    }

    fn compare_request(master: &MasterKeys, value: i64, rng: &mut StdRng) -> S1Request {
        S1Request::Compare {
            blinded: vec![master.paillier_public.encrypt_i64(value, rng).unwrap()],
            context: "test".into(),
        }
    }

    #[test]
    fn envelope_round_trips_and_rejects_truncation() {
        let envelope =
            Envelope { session: SessionId(77), seq: 12, frame: vec![frame::REQUEST, 1, 2, 3] };
        let bytes = envelope.encode();
        assert_eq!(bytes.len(), ENVELOPE_HEADER_LEN + 4);
        assert_eq!(Envelope::decode(&bytes).unwrap(), envelope);
        assert!(Envelope::decode(&bytes[..ENVELOPE_HEADER_LEN - 1]).is_err());
        // An empty frame decodes (control noise); the worker just skips it.
        let empty = Envelope { session: SessionId(1), seq: 0, frame: vec![] };
        assert_eq!(Envelope::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn multiplexed_session_matches_dedicated_channel_transport() {
        let master = master(21);
        let server = MultiplexServer::new(2);
        let mut mux =
            server.connect(SessionId(5), engine_for(&master, 99), LinkProfile::ideal()).unwrap();
        let mut channel = ChannelTransport::new(engine_for(&master, 99));

        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        let a = mux.round_trip(compare_request(&master, -4, &mut rng_a)).unwrap();
        let b = channel.round_trip(compare_request(&master, -4, &mut rng_b)).unwrap();
        assert_eq!(a, b, "same engine seed must answer identically");
        assert_eq!(mux.metrics(), channel.metrics(), "metering must be transport-invariant");
        assert_eq!(mux.s2_ledger().events(), channel.s2_ledger().events());
        assert_eq!(mux.kind(), TransportKind::Multiplex);
    }

    #[test]
    fn sessions_are_isolated_and_ledgers_do_not_bleed() {
        let master = master(22);
        let server = MultiplexServer::new(3);
        let mut s1 = server
            .connect(SessionId(1), engine_for(&master, shard_seed(7, 1)), LinkProfile::ideal())
            .unwrap();
        let mut s2 = server
            .connect(SessionId(2), engine_for(&master, shard_seed(7, 2)), LinkProfile::ideal())
            .unwrap();
        assert_eq!(server.active_sessions(), 2);

        let mut rng = StdRng::seed_from_u64(9);
        s1.round_trip(compare_request(&master, 1, &mut rng)).unwrap();
        s1.round_trip(compare_request(&master, -1, &mut rng)).unwrap();
        s2.round_trip(compare_request(&master, 2, &mut rng)).unwrap();

        assert_eq!(s1.s2_ledger().len(), 2, "session 1 observed its own two signs");
        assert_eq!(s2.s2_ledger().len(), 1, "session 2 observed exactly its own sign");
        assert_eq!(s1.metrics().rounds, 2);
        assert_eq!(s2.metrics().rounds, 1);

        // Resetting one session leaves the other's ledger intact.
        s1.reset_s2();
        assert!(s1.s2_ledger().is_empty());
        assert_eq!(s2.s2_ledger().len(), 1);
    }

    #[test]
    fn duplicate_session_ids_are_rejected() {
        let master = master(23);
        let server = MultiplexServer::new(1);
        let _first =
            server.connect(SessionId(9), engine_for(&master, 1), LinkProfile::ideal()).unwrap();
        let err =
            server.connect(SessionId(9), engine_for(&master, 2), LinkProfile::ideal()).unwrap_err();
        assert!(matches!(err, ProtocolError::Transport(_)));
        assert_eq!(server.active_sessions(), 1);
    }

    #[test]
    fn disconnect_frees_the_session_slot() {
        let master = master(24);
        let server = MultiplexServer::new(1);
        {
            let mut t =
                server.connect(SessionId(4), engine_for(&master, 5), LinkProfile::ideal()).unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            t.round_trip(compare_request(&master, 3, &mut rng)).unwrap();
            assert_eq!(server.active_sessions(), 1);
        }
        // Teardown is synchronous (the drop waits for the disconnect ack), so the id is
        // immediately free for reuse.
        assert_eq!(server.active_sessions(), 0);
        let _t =
            server.connect(SessionId(4), engine_for(&master, 6), LinkProfile::ideal()).unwrap();
        assert_eq!(server.active_sessions(), 1);
    }

    #[test]
    fn dropped_server_errors_cleanly() {
        let master = master(25);
        let server = MultiplexServer::new(2);
        let mut t =
            server.connect(SessionId(8), engine_for(&master, 5), LinkProfile::ideal()).unwrap();
        drop(server);
        let mut rng = StdRng::seed_from_u64(2);
        let err = t.round_trip(compare_request(&master, 1, &mut rng)).unwrap_err();
        assert!(matches!(err, ProtocolError::Transport(_)));
    }

    #[test]
    fn private_server_backs_a_self_contained_transport() {
        let master = master(26);
        let mut t =
            MultiplexTransport::private(engine_for(&master, 31), LinkProfile::ideal()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let response = t.round_trip(compare_request(&master, -2, &mut rng)).unwrap();
        assert_eq!(response, S2Response::Signs(vec![-1]));
        assert_eq!(t.metrics().rounds, 1);
        assert!(!t.s2_ledger().is_empty());
    }

    #[test]
    fn engine_errors_surface_without_killing_the_worker() {
        let master = master(27);
        let server = MultiplexServer::new(1);
        let mut t =
            server.connect(SessionId(3), engine_for(&master, 2), LinkProfile::ideal()).unwrap();
        use crate::transport::EqWants;
        let err = t
            .round_trip(S1Request::EqAggregate { rows: 2, cols: 2, want: EqWants::none() })
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Remote(_)));
        // The single worker survived and still serves requests.
        let mut rng = StdRng::seed_from_u64(5);
        t.round_trip(compare_request(&master, 1, &mut rng)).unwrap();
    }

    #[test]
    fn retried_sequence_is_replayed_from_cache_not_reexecuted() {
        let master = master(31);
        let server = MultiplexServer::new(1);
        let conduit = server.attach(SessionId(6), engine_for(&master, 44)).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let request = compare_request(&master, 5, &mut rng);
        let env =
            Envelope { session: SessionId(6), seq: 1, frame: framed(frame::REQUEST, &request) };
        conduit.submit(env.encode()).unwrap();
        let first = conduit.from_server.recv().unwrap();
        // Deliver the exact same envelope again, as a resumed client's retry would.
        conduit.submit(env.encode()).unwrap();
        let second = conduit.from_server.recv().unwrap();
        assert_eq!(first, second, "replayed reply must be byte-identical");
        assert_eq!(server.replayed_replies(), 1);
        // The engine executed once: the session ledger holds exactly one sign event.
        let ledger_env =
            Envelope { session: SessionId(6), seq: 0, frame: vec![frame::FETCH_LEDGER] };
        conduit.submit(ledger_env.encode()).unwrap();
        let reply = Envelope::decode(&conduit.from_server.recv().unwrap()).unwrap();
        let (tag, payload) = reply.frame.split_first().unwrap();
        assert_eq!(*tag, frame::LEDGER);
        let ledger: LeakageLedger = wire::from_bytes(payload).unwrap();
        assert_eq!(ledger.len(), 1, "the compare must have executed exactly once");
    }

    #[test]
    fn pruned_replay_cache_reexecutes_a_resent_sequence() {
        // prune_replay models the client having ACKed the reply: the cache entry is
        // freed and a (protocol-violating) re-send executes afresh.
        let master = master(33);
        let server = MultiplexServer::new(1);
        let conduit = server.attach(SessionId(2), engine_for(&master, 11)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let request = compare_request(&master, -7, &mut rng);
        let env =
            Envelope { session: SessionId(2), seq: 1, frame: framed(frame::REQUEST, &request) };
        conduit.submit(env.encode()).unwrap();
        conduit.from_server.recv().unwrap();
        server.prune_replay(SessionId(2), 1);
        conduit.submit(env.encode()).unwrap();
        conduit.from_server.recv().unwrap();
        assert_eq!(server.replayed_replies(), 0, "pruned entry cannot replay");
        // Pruning an unknown session is a no-op.
        server.prune_replay(SessionId(99), 5);
    }

    #[test]
    fn submissions_beyond_the_inbox_bound_are_shed() {
        let master = master(32);
        let server =
            MultiplexServer::with_limits(1, PoolLimits { max_sessions: 8, session_queue_depth: 1 });
        assert_eq!(server.limits().session_queue_depth, 1);
        let conduit = server.attach(SessionId(1), engine_for(&master, 7)).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        // Submit without ever reading replies: once the bounded reply queue fills, the
        // worker blocks mid-reply, the inbox stops draining, and the session's
        // inflight count pins above the bound, so a later submission must be shed.
        let mut shed = false;
        for seq in 1..=10u64 {
            let request = compare_request(&master, seq as i64, &mut rng);
            let env =
                Envelope { session: SessionId(1), seq, frame: framed(frame::REQUEST, &request) };
            match conduit.submit(env.encode()) {
                Ok(()) => {}
                Err(SubmitError::QueueFull) => {
                    shed = true;
                    break;
                }
                Err(SubmitError::ServerGone) => panic!("server vanished"),
            }
        }
        assert!(shed, "the inbox bound must shed before 10 unanswered submissions");
        assert!(server.shed_requests() >= 1);
    }

    #[test]
    fn session_table_full_is_a_typed_retryable_overload() {
        use crate::error::TransportErrorKind;
        let master = master(34);
        let server =
            MultiplexServer::with_limits(1, PoolLimits { max_sessions: 1, ..Default::default() });
        let _a =
            server.connect(SessionId(1), engine_for(&master, 1), LinkProfile::ideal()).unwrap();
        let err =
            server.connect(SessionId(2), engine_for(&master, 2), LinkProfile::ideal()).unwrap_err();
        assert!(err.is_retryable(), "a full session table is transient");
        assert!(
            matches!(&err, ProtocolError::Transport(e) if e.kind == TransportErrorKind::Overloaded),
            "unexpected error {err:?}"
        );
        // A duplicate id is permanent, not an overload.
        let dup =
            server.connect(SessionId(1), engine_for(&master, 3), LinkProfile::ideal()).unwrap_err();
        assert!(!dup.is_retryable());
    }

    #[test]
    fn reattach_preserves_engine_state_and_swaps_the_reply_channel() {
        let master = master(35);
        let server = MultiplexServer::new(1);
        let conduit = server.attach(SessionId(9), engine_for(&master, 21)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let first = compare_request(&master, 2, &mut rng);
        let env = Envelope { session: SessionId(9), seq: 1, frame: framed(frame::REQUEST, &first) };
        conduit.submit(env.encode()).unwrap();
        conduit.from_server.recv().unwrap();

        // The connection "drops" (conduit kept alive to model a dying bridge); a new
        // conduit takes over the same slot.
        let resumed = server.reattach(SessionId(9)).expect("session is registered");
        let second = compare_request(&master, -3, &mut rng);
        let env =
            Envelope { session: SessionId(9), seq: 2, frame: framed(frame::REQUEST, &second) };
        resumed.submit(env.encode()).unwrap();
        resumed.from_server.recv().unwrap();

        // Both requests landed in the same engine: the ledger saw both signs.
        let ledger_env =
            Envelope { session: SessionId(9), seq: 0, frame: vec![frame::FETCH_LEDGER] };
        resumed.submit(ledger_env.encode()).unwrap();
        let reply = Envelope::decode(&resumed.from_server.recv().unwrap()).unwrap();
        let ledger: LeakageLedger = wire::from_bytes(&reply.frame[1..]).unwrap();
        assert_eq!(ledger.len(), 2, "the resumed slot kept its ledger");

        assert!(server.reattach(SessionId(99)).is_none(), "unknown sessions cannot reattach");
    }

    #[test]
    fn simulated_link_adds_wall_clock_but_not_traffic() {
        let master = master(28);
        let server = MultiplexServer::new(1);
        let mut fast =
            server.connect(SessionId(1), engine_for(&master, 9), LinkProfile::ideal()).unwrap();
        let mut slow = server
            .connect(SessionId(2), engine_for(&master, 9), LinkProfile::with_rtt_ms(30))
            .unwrap();
        let mut rng_a = StdRng::seed_from_u64(6);
        let mut rng_b = StdRng::seed_from_u64(6);
        fast.round_trip(compare_request(&master, 1, &mut rng_a)).unwrap();
        let start = std::time::Instant::now();
        slow.round_trip(compare_request(&master, 1, &mut rng_b)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(30), "RTT must cost wall-clock");
        assert_eq!(fast.metrics(), slow.metrics(), "the simulated link must not alter metrics");
    }
}
