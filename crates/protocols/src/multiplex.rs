//! Session-multiplexed serving: one crypto-cloud S2 worker pool answering many
//! concurrent S1 sessions over a single byte channel.
//!
//! # Why sessions
//!
//! The paper's deployment (§3.2) is a *service*: the primary cloud S1 answers top-k
//! queries for many independent clients, using the crypto cloud S2 as a co-processor.
//! [`crate::transport::ChannelTransport`] models one S1 talking to one dedicated S2
//! thread; this module generalises it to the served workload — a [`MultiplexServer`]
//! owns a pool of S2 worker threads and a registry of per-session state, and every
//! connected [`MultiplexTransport`] is one S1 session:
//!
//! ```text
//!   session 1  S1 ──┐                               ┌── worker 1 ──┐
//!   session 2  S1 ──┤   Envelope{session, seq,      ├── worker 2 ──┤   per-session
//!   session 3  S1 ──┼──  frame bytes}  ───────────▶ ├── …          ├─▶ S2Engine
//!      …            │   shared mpsc byte channel    └── worker W ──┘   (keys shared
//!   session N  S1 ──┘                                                   behind Arc)
//!        ▲                                                 │
//!        └──────────── per-session reply channel ◀─────────┘
//! ```
//!
//! # Isolation and determinism
//!
//! Each session owns an [`S2Engine`] of its own (behind a `Mutex`, because any worker
//! may pick up its next request): its leakage ledger, accumulated equality bits, RNG
//! and nonce-pool shards are **per session**, so
//!
//! * ledgers never bleed between sessions — "what did S2 observe while serving client
//!   *i*" stays a well-defined question under concurrency, and
//! * every session's ciphertext stream is a deterministic function of its own seed
//!   ([`sectopk_crypto::pool::shard_seed`] decorrelates the shards), which makes *N*
//!   sessions served concurrently byte-identical to the same *N* sessions served one
//!   after another (asserted by `tests/concurrent_sessions.rs`).
//!
//! The engines share the key material (`S2Keys` is `Arc`-backed, so worker threads
//! share one copy of the moduli and Montgomery contexts), but no mutable state.
//!
//! Because a session's client blocks on [`Transport::round_trip`], at most one request
//! per session is in flight: workers never contend on a session's engine, only on the
//! shared inbox.
//!
//! # Wire envelope
//!
//! Every message on the multiplexed channel is an [`Envelope`]: a fixed 16-byte header
//! (session id and sequence number, both little-endian `u64`) followed by the same
//! tag-plus-payload frame [`crate::transport::ChannelTransport`] ships.  The server
//! echoes the header on the reply, and the transport verifies the echo, so a response
//! can never be attributed to the wrong session or request.  Metering counts the
//! payload only (headers and tags are local framing, exactly as on the other
//! transports), which keeps [`crate::channel::ChannelMetrics`] byte-identical across
//! all three transport implementations.
//!
//! # Simulated link
//!
//! A [`LinkProfile`] optionally adds a per-round-trip RTT on the client side, modelling
//! the inter-cloud WAN of §11.2.5 (the paper assumes a 50 Mbps link between S1 and S2).
//! Under a latency-bound link, session multiplexing is what buys aggregate throughput:
//! while one session waits out its RTT, the worker pool serves the others.  The
//! `throughput` bench sweeps exactly this.

use std::collections::HashMap;
use std::fmt;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::channel::{ChannelMetrics, Direction};
use crate::engine::S2Engine;
use crate::error::{ProtocolError, Result};
use crate::ledger::LeakageLedger;
use crate::transport::{
    frame, framed, response_or_error, S1Request, S2Response, Transport, TransportKind,
};
use crate::wire;
use crate::wire::WireError;

/// Identifier of one S1 session on a multiplexed channel.  Chosen by the serving layer
/// (e.g. densely numbered client connections); must be unique per [`MultiplexServer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Bytes of the fixed envelope header: session id + sequence number, both `u64` LE.
pub const ENVELOPE_HEADER_LEN: usize = 16;

/// One message on the multiplexed byte channel: the session id, the sender's sequence
/// number (echoed verbatim on replies), and the tag-plus-payload frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Which session this frame belongs to.
    pub session: SessionId,
    /// Request counter within the session; replies echo the request's value.
    pub seq: u64,
    /// Frame bytes: one tag byte (see `transport::frame`) followed by the wire payload.
    pub frame: Vec<u8>,
}

impl Envelope {
    /// Encode header + frame into channel bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ENVELOPE_HEADER_LEN + self.frame.len());
        out.extend_from_slice(&self.session.0.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.frame);
        out
    }

    /// Decode channel bytes back into an envelope.  The frame may be empty only for
    /// control messages that carry no tag; protocol traffic always has at least a tag.
    pub fn decode(bytes: &[u8]) -> Result<Envelope> {
        if bytes.len() < ENVELOPE_HEADER_LEN {
            return Err(ProtocolError::transport("truncated multiplex envelope"));
        }
        let mut session = [0u8; 8];
        session.copy_from_slice(&bytes[..8]);
        let mut seq = [0u8; 8];
        seq.copy_from_slice(&bytes[8..16]);
        Ok(Envelope {
            session: SessionId(u64::from_le_bytes(session)),
            seq: u64::from_le_bytes(seq),
            frame: bytes[ENVELOPE_HEADER_LEN..].to_vec(),
        })
    }
}

/// Characteristics of the simulated S1 ↔ S2 link.  [`LinkProfile::ideal`] (the default)
/// adds nothing; a nonzero RTT makes every protocol round trip cost that much
/// wall-clock on the client side, modelling the WAN between the two clouds.  Metrics
/// and ledgers are unaffected — only latency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkProfile {
    /// Round-trip time added to every protocol round trip (control traffic excluded).
    pub rtt: Duration,
}

impl LinkProfile {
    /// A zero-latency link (requests cost only their compute).
    pub fn ideal() -> Self {
        Self::default()
    }

    /// A link with the given round-trip time in milliseconds.
    pub fn with_rtt_ms(rtt_ms: u64) -> Self {
        LinkProfile { rtt: Duration::from_millis(rtt_ms) }
    }
}

/// Depth of each session's bounded reply queue.  The protocol is strictly
/// request/reply (a client or gateway bridge holds at most one envelope in flight per
/// session), so the queue never fills in correct operation; the bound is backpressure —
/// a worker facing a stalled session blocks instead of buffering replies without limit.
const REPLY_QUEUE_DEPTH: usize = 2;

/// Per-session server-side state: the session's own engine (ledger, RNG, pool shards,
/// accumulated equality bits) and the bounded channel its replies travel back on.
struct SessionSlot {
    engine: Mutex<S2Engine>,
    replies: mpsc::SyncSender<Vec<u8>>,
}

/// Raw channel endpoints of one registered session: the shared server inbox plus the
/// session's private reply queue.  Gateway bridges (the TCP listener's per-connection
/// threads) forward envelope bytes through these; local in-process clients use the
/// [`MultiplexTransport`] built on the same endpoints by [`MultiplexServer::connect`].
pub(crate) struct SessionConduit {
    pub(crate) to_server: mpsc::Sender<Vec<u8>>,
    pub(crate) from_server: mpsc::Receiver<Vec<u8>>,
}

type Registry = Arc<Mutex<HashMap<SessionId, Arc<SessionSlot>>>>;

/// The crypto cloud S2 as a multi-session service: a worker-thread pool draining one
/// shared byte channel, routing each [`Envelope`] to its session's engine.
pub struct MultiplexServer {
    inbox: mpsc::Sender<Vec<u8>>,
    registry: Registry,
    workers: Vec<JoinHandle<()>>,
}

impl fmt::Debug for MultiplexServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiplexServer")
            .field("workers", &self.workers.len())
            .field("active_sessions", &self.active_sessions())
            .finish()
    }
}

impl MultiplexServer {
    /// Spawn a server with `workers` S2 worker threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (inbox, rx) = mpsc::channel::<Vec<u8>>();
        let shared_rx = Arc::new(Mutex::new(rx));
        let registry: Registry = Arc::new(Mutex::new(HashMap::new()));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&shared_rx);
                let registry = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("sectopk-s2-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &registry))
                    .expect("spawn S2 worker thread")
            })
            .collect();
        MultiplexServer { inbox, registry, workers: handles }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of currently connected sessions.
    pub fn active_sessions(&self) -> usize {
        self.registry.lock().expect("session registry poisoned").len()
    }

    /// Register `session` backed by `engine` and hand back the S1-side transport for
    /// it.  The engine carries the session's seed (and thereby its deterministic pool
    /// shards); build it with [`sectopk_crypto::pool::shard_seed`]-derived seeds when
    /// serving many sessions from one base seed.  Fails if the id is already connected.
    pub fn connect(
        &self,
        session: SessionId,
        engine: S2Engine,
        link: LinkProfile,
    ) -> Result<MultiplexTransport> {
        let conduit = self
            .attach(session, engine)
            .map_err(|_| ProtocolError::transport(format!("{session} is already connected")))?;
        Ok(MultiplexTransport {
            session,
            seq: 0,
            to_server: conduit.to_server,
            from_server: conduit.from_server,
            link,
            metrics: ChannelMetrics::new(),
            private_server: None,
        })
    }

    /// The shared server inbox — the channel every envelope enters the pool through.
    /// The TCP listener uses it to inject reaping disconnects for dead connections.
    pub(crate) fn inbox(&self) -> &mpsc::Sender<Vec<u8>> {
        &self.inbox
    }

    /// Register `session` backed by `engine` and hand back the raw channel endpoints.
    /// On an id collision the engine is handed back so the caller can retry under a
    /// different id (the TCP listener's session negotiation does exactly that).
    // The large Err *is* the point: the caller gets its engine back by value instead
    // of rebuilding it, and this is a cold, crate-internal path.
    #[allow(clippy::result_large_err)]
    pub(crate) fn attach(
        &self,
        session: SessionId,
        engine: S2Engine,
    ) -> std::result::Result<SessionConduit, S2Engine> {
        let (reply_tx, reply_rx) = mpsc::sync_channel::<Vec<u8>>(REPLY_QUEUE_DEPTH);
        let mut registry = self.registry.lock().expect("session registry poisoned");
        if registry.contains_key(&session) {
            return Err(engine);
        }
        registry.insert(
            session,
            Arc::new(SessionSlot { engine: Mutex::new(engine), replies: reply_tx }),
        );
        Ok(SessionConduit { to_server: self.inbox.clone(), from_server: reply_rx })
    }
}

impl Drop for MultiplexServer {
    fn drop(&mut self) {
        // One shutdown envelope per worker; each worker exits on the first it sees.
        for _ in 0..self.workers.len() {
            let shutdown = Envelope { session: SessionId(0), seq: 0, frame: vec![frame::SHUTDOWN] };
            let _ = self.inbox.send(shutdown.encode());
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Dropping the slots closes every session's reply channel, so a client still
        // blocked on a response sees a clean "server is gone" error instead of a hang.
        self.registry.lock().expect("session registry poisoned").clear();
    }
}

/// One S2 worker: drain the shared inbox, route each envelope to its session.
fn worker_loop(rx: &Mutex<mpsc::Receiver<Vec<u8>>>, registry: &Registry) {
    loop {
        // Hold the inbox lock only for the dequeue, not while processing.
        let incoming = match rx.lock().expect("server inbox poisoned").recv() {
            Ok(bytes) => bytes,
            Err(_) => return, // every transport and the server handle are gone
        };
        let Ok(envelope) = Envelope::decode(&incoming) else {
            continue; // undecodable channel noise: nothing to route a reply to
        };
        let Some((&tag, payload)) = envelope.frame.split_first() else {
            continue;
        };
        if tag == frame::SHUTDOWN {
            return;
        }
        let slot = {
            let mut registry = registry.lock().expect("session registry poisoned");
            if tag == frame::DISCONNECT {
                if let Some(slot) = registry.remove(&envelope.session) {
                    // Acknowledge so the departing client can block until its id is
                    // actually free for reuse.
                    let ack = Envelope {
                        session: envelope.session,
                        seq: envelope.seq,
                        frame: vec![frame::DISCONNECT_DONE],
                    };
                    let _ = slot.replies.send(ack.encode());
                }
                continue;
            }
            match registry.get(&envelope.session) {
                Some(slot) => Arc::clone(slot),
                None => continue, // unknown session (e.g. raced with a disconnect)
            }
        };
        let mut engine = slot.engine.lock().expect("session engine poisoned");
        let reply_frame: Vec<u8> = match tag {
            frame::REQUEST => {
                let response = match wire::from_bytes::<S1Request>(payload) {
                    Ok(request) => engine.handle(&request).unwrap_or_else(S2Response::Error),
                    Err(e) => {
                        S2Response::Error(WireError::codec(format!("undecodable request: {e}")))
                    }
                };
                framed(frame::RESPONSE, &response)
            }
            frame::FETCH_LEDGER => framed(frame::LEDGER, engine.ledger()),
            frame::RESET => {
                engine.reset();
                vec![frame::RESET_DONE]
            }
            _ => framed(frame::RESPONSE, &S2Response::Error(WireError::unknown_frame(tag))),
        };
        drop(engine);
        let reply = Envelope { session: envelope.session, seq: envelope.seq, frame: reply_frame };
        // A send failure means the session's client hung up; drop the reply.
        let _ = slot.replies.send(reply.encode());
    }
}

/// The S1 side of one multiplexed session: a [`Transport`] whose frames travel inside
/// session-tagged envelopes to a shared [`MultiplexServer`].
pub struct MultiplexTransport {
    session: SessionId,
    seq: u64,
    to_server: mpsc::Sender<Vec<u8>>,
    from_server: mpsc::Receiver<Vec<u8>>,
    link: LinkProfile,
    metrics: ChannelMetrics,
    /// When the transport was created through [`TransportKind::Multiplex`] rather than
    /// by connecting to an explicit server, it owns a private single-worker server that
    /// must live (and shut down) with it.
    private_server: Option<Box<MultiplexServer>>,
}

impl fmt::Debug for MultiplexTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiplexTransport")
            .field("session", &self.session)
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl MultiplexTransport {
    /// A self-contained multiplexed transport: spins up a private single-worker
    /// [`MultiplexServer`] serving only this session.  This is what
    /// `SECTOPK_TRANSPORT=multiplex` uses, so the whole test suite can exercise the
    /// envelope path without managing a server.
    pub fn private(engine: S2Engine, link: LinkProfile) -> Result<Self> {
        let server = MultiplexServer::new(1);
        let mut transport = server.connect(SessionId(1), engine, link)?;
        transport.private_server = Some(Box::new(server));
        Ok(transport)
    }

    /// The session this transport speaks for.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Ship one frame under sequence number `seq` and wait for the server's reply,
    /// verifying the envelope echo.  Protocol traffic uses the transport's incrementing
    /// counter; control traffic uses the reserved `seq` 0.  Either way the client holds
    /// at most one request in flight, so the blocking receive always pairs correctly.
    ///
    /// `delay` is the simulated link RTT: it runs *between* the send and the receive,
    /// so it overlaps with S2's compute exactly as propagation overlaps with remote
    /// work on a real link.
    fn exchange_with_seq(
        &self,
        seq: u64,
        frame_bytes: Vec<u8>,
        delay: Duration,
    ) -> Result<Envelope> {
        let envelope = Envelope { session: self.session, seq, frame: frame_bytes };
        self.to_server
            .send(envelope.encode())
            .map_err(|_| ProtocolError::transport("multiplex server is gone"))?;
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        let incoming = self
            .from_server
            .recv()
            .map_err(|_| ProtocolError::transport("multiplex server hung up"))?;
        let reply = Envelope::decode(&incoming)?;
        if reply.session != self.session || reply.seq != seq {
            return Err(ProtocolError::transport(format!(
                "envelope echo mismatch: sent {}#{seq}, got {}#{}",
                self.session, reply.session, reply.seq
            )));
        }
        Ok(reply)
    }

    /// Ship one protocol frame under the next sequence number, over the simulated link.
    fn exchange(&mut self, frame_bytes: Vec<u8>) -> Result<Envelope> {
        self.seq += 1;
        self.exchange_with_seq(self.seq, frame_bytes, self.link.rtt)
    }

    /// One unmetered control-plane exchange (ledger fetch / reset), expecting a reply
    /// frame starting with `expected_reply`.  Control traffic skips the simulated link.
    fn control(&self, tag: u8, expected_reply: u8) -> Result<Vec<u8>> {
        let reply = self.exchange_with_seq(0, vec![tag], Duration::ZERO)?;
        match reply.frame.split_first() {
            Some((&t, payload)) if t == expected_reply => Ok(payload.to_vec()),
            _ => Err(ProtocolError::transport("unexpected control reply from S2")),
        }
    }
}

impl Transport for MultiplexTransport {
    fn round_trip(&mut self, request: S1Request) -> Result<S2Response> {
        let out_frame = framed(frame::REQUEST, &request);
        // Metered size = wire payload only; the tag byte and the 16-byte envelope
        // header are local framing, keeping metrics identical across transports.
        self.metrics.record(Direction::S1ToS2, out_frame.len() - 1, request.ciphertext_count());
        let reply = self.exchange(out_frame)?;
        let payload = match reply.frame.split_first() {
            Some((&frame::RESPONSE, payload)) => payload,
            _ => return Err(ProtocolError::transport("unexpected reply frame from S2")),
        };
        let response: S2Response = wire::from_bytes(payload)
            .map_err(|e| ProtocolError::transport(format!("undecodable response: {e}")))?;
        self.metrics.record(Direction::S2ToS1, payload.len(), response.ciphertext_count());
        response_or_error(response)
    }

    fn metrics(&self) -> ChannelMetrics {
        self.metrics
    }

    fn reset_metrics(&mut self) {
        self.metrics = ChannelMetrics::new();
    }

    fn s2_ledger(&self) -> LeakageLedger {
        // Control traffic is unmetered and skips the simulated link; like the threaded
        // transport, a dead server must fail loudly rather than return an empty ledger.
        let payload = self
            .control(frame::FETCH_LEDGER, frame::LEDGER)
            .expect("multiplex server unavailable while fetching the session ledger");
        wire::from_bytes(&payload).expect("undecodable S2 ledger snapshot")
    }

    fn reset_s2(&mut self) {
        self.control(frame::RESET, frame::RESET_DONE)
            .expect("multiplex server unavailable while resetting the session");
    }

    fn kind(&self) -> TransportKind {
        TransportKind::Multiplex
    }

    fn link(&self) -> LinkProfile {
        self.link
    }
}

impl Drop for MultiplexTransport {
    fn drop(&mut self) {
        let disconnect =
            Envelope { session: self.session, seq: self.seq + 1, frame: vec![frame::DISCONNECT] };
        if self.to_server.send(disconnect.encode()).is_ok() {
            // Wait for the ack (or the channel closing) so the session id is free for
            // reuse the moment this drop returns; best effort if the server is gone.
            let _ = self.from_server.recv();
        }
        // A private server (if any) drops afterwards, joining its worker.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::keys::MasterKeys;
    use sectopk_crypto::paillier::{generate_keypair, MIN_MODULUS_BITS};
    use sectopk_crypto::pool::shard_seed;

    use crate::transport::ChannelTransport;

    fn master(seed: u64) -> MasterKeys {
        let mut rng = StdRng::seed_from_u64(seed);
        MasterKeys::generate(MIN_MODULUS_BITS, 2, &mut rng).unwrap()
    }

    fn engine_for(master: &MasterKeys, engine_seed: u64) -> S2Engine {
        let mut rng = StdRng::seed_from_u64(engine_seed ^ 0xABCD);
        let (own_pk, _own_sk) = generate_keypair(MIN_MODULUS_BITS, &mut rng).unwrap();
        S2Engine::new(master.s2_view(), own_pk, engine_seed)
    }

    fn compare_request(master: &MasterKeys, value: i64, rng: &mut StdRng) -> S1Request {
        S1Request::Compare {
            blinded: vec![master.paillier_public.encrypt_i64(value, rng).unwrap()],
            context: "test".into(),
        }
    }

    #[test]
    fn envelope_round_trips_and_rejects_truncation() {
        let envelope =
            Envelope { session: SessionId(77), seq: 12, frame: vec![frame::REQUEST, 1, 2, 3] };
        let bytes = envelope.encode();
        assert_eq!(bytes.len(), ENVELOPE_HEADER_LEN + 4);
        assert_eq!(Envelope::decode(&bytes).unwrap(), envelope);
        assert!(Envelope::decode(&bytes[..ENVELOPE_HEADER_LEN - 1]).is_err());
        // An empty frame decodes (control noise); the worker just skips it.
        let empty = Envelope { session: SessionId(1), seq: 0, frame: vec![] };
        assert_eq!(Envelope::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn multiplexed_session_matches_dedicated_channel_transport() {
        let master = master(21);
        let server = MultiplexServer::new(2);
        let mut mux =
            server.connect(SessionId(5), engine_for(&master, 99), LinkProfile::ideal()).unwrap();
        let mut channel = ChannelTransport::new(engine_for(&master, 99));

        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        let a = mux.round_trip(compare_request(&master, -4, &mut rng_a)).unwrap();
        let b = channel.round_trip(compare_request(&master, -4, &mut rng_b)).unwrap();
        assert_eq!(a, b, "same engine seed must answer identically");
        assert_eq!(mux.metrics(), channel.metrics(), "metering must be transport-invariant");
        assert_eq!(mux.s2_ledger().events(), channel.s2_ledger().events());
        assert_eq!(mux.kind(), TransportKind::Multiplex);
    }

    #[test]
    fn sessions_are_isolated_and_ledgers_do_not_bleed() {
        let master = master(22);
        let server = MultiplexServer::new(3);
        let mut s1 = server
            .connect(SessionId(1), engine_for(&master, shard_seed(7, 1)), LinkProfile::ideal())
            .unwrap();
        let mut s2 = server
            .connect(SessionId(2), engine_for(&master, shard_seed(7, 2)), LinkProfile::ideal())
            .unwrap();
        assert_eq!(server.active_sessions(), 2);

        let mut rng = StdRng::seed_from_u64(9);
        s1.round_trip(compare_request(&master, 1, &mut rng)).unwrap();
        s1.round_trip(compare_request(&master, -1, &mut rng)).unwrap();
        s2.round_trip(compare_request(&master, 2, &mut rng)).unwrap();

        assert_eq!(s1.s2_ledger().len(), 2, "session 1 observed its own two signs");
        assert_eq!(s2.s2_ledger().len(), 1, "session 2 observed exactly its own sign");
        assert_eq!(s1.metrics().rounds, 2);
        assert_eq!(s2.metrics().rounds, 1);

        // Resetting one session leaves the other's ledger intact.
        s1.reset_s2();
        assert!(s1.s2_ledger().is_empty());
        assert_eq!(s2.s2_ledger().len(), 1);
    }

    #[test]
    fn duplicate_session_ids_are_rejected() {
        let master = master(23);
        let server = MultiplexServer::new(1);
        let _first =
            server.connect(SessionId(9), engine_for(&master, 1), LinkProfile::ideal()).unwrap();
        let err =
            server.connect(SessionId(9), engine_for(&master, 2), LinkProfile::ideal()).unwrap_err();
        assert!(matches!(err, ProtocolError::Transport(_)));
        assert_eq!(server.active_sessions(), 1);
    }

    #[test]
    fn disconnect_frees_the_session_slot() {
        let master = master(24);
        let server = MultiplexServer::new(1);
        {
            let mut t =
                server.connect(SessionId(4), engine_for(&master, 5), LinkProfile::ideal()).unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            t.round_trip(compare_request(&master, 3, &mut rng)).unwrap();
            assert_eq!(server.active_sessions(), 1);
        }
        // Teardown is synchronous (the drop waits for the disconnect ack), so the id is
        // immediately free for reuse.
        assert_eq!(server.active_sessions(), 0);
        let _t =
            server.connect(SessionId(4), engine_for(&master, 6), LinkProfile::ideal()).unwrap();
        assert_eq!(server.active_sessions(), 1);
    }

    #[test]
    fn dropped_server_errors_cleanly() {
        let master = master(25);
        let server = MultiplexServer::new(2);
        let mut t =
            server.connect(SessionId(8), engine_for(&master, 5), LinkProfile::ideal()).unwrap();
        drop(server);
        let mut rng = StdRng::seed_from_u64(2);
        let err = t.round_trip(compare_request(&master, 1, &mut rng)).unwrap_err();
        assert!(matches!(err, ProtocolError::Transport(_)));
    }

    #[test]
    fn private_server_backs_a_self_contained_transport() {
        let master = master(26);
        let mut t =
            MultiplexTransport::private(engine_for(&master, 31), LinkProfile::ideal()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let response = t.round_trip(compare_request(&master, -2, &mut rng)).unwrap();
        assert_eq!(response, S2Response::Signs(vec![-1]));
        assert_eq!(t.metrics().rounds, 1);
        assert!(!t.s2_ledger().is_empty());
    }

    #[test]
    fn engine_errors_surface_without_killing_the_worker() {
        let master = master(27);
        let server = MultiplexServer::new(1);
        let mut t =
            server.connect(SessionId(3), engine_for(&master, 2), LinkProfile::ideal()).unwrap();
        use crate::transport::EqWants;
        let err = t
            .round_trip(S1Request::EqAggregate { rows: 2, cols: 2, want: EqWants::none() })
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Remote(_)));
        // The single worker survived and still serves requests.
        let mut rng = StdRng::seed_from_u64(5);
        t.round_trip(compare_request(&master, 1, &mut rng)).unwrap();
    }

    #[test]
    fn simulated_link_adds_wall_clock_but_not_traffic() {
        let master = master(28);
        let server = MultiplexServer::new(1);
        let mut fast =
            server.connect(SessionId(1), engine_for(&master, 9), LinkProfile::ideal()).unwrap();
        let mut slow = server
            .connect(SessionId(2), engine_for(&master, 9), LinkProfile::with_rtt_ms(30))
            .unwrap();
        let mut rng_a = StdRng::seed_from_u64(6);
        let mut rng_b = StdRng::seed_from_u64(6);
        fast.round_trip(compare_request(&master, 1, &mut rng_a)).unwrap();
        let start = std::time::Instant::now();
        slow.round_trip(compare_request(&master, 1, &mut rng_b)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(30), "RTT must cost wall-clock");
        assert_eq!(fast.metrics(), slow.metrics(), "the simulated link must not alter metrics");
    }
}
