//! `SecWorst` (Algorithm 4): the per-depth worst-score (lower-bound) computation.
//!
//! At depth `d`, for the item `E(I_i) = ⟨EHL(o_i), Enc(x_i)⟩` of list `i`, the worst
//! score *based on the current depth only* is
//!
//! ```text
//! W(o_i) = x_i + Σ_{j ≠ i, o_j = o_i at depth d} x_j
//! ```
//!
//! i.e. the sum of the object's scores over every list where it appears at this depth.
//! S1 cannot evaluate the condition `o_j = o_i` itself; it sends the randomly permuted
//! `⊖` results through the transport, S2 decrypts them (learning only the equality
//! pattern) and replies with `E2(t_j)`; S1 then evaluates the Damgård–Jurik selection
//! and recovers `Enc(t_j · x_j)` via `RecoverEnc` — exactly the steps of Algorithm 4.
//!
//! With batching enabled, the equality matrices of **all** `m` per-depth items travel in
//! one [`crate::transport::S1Request::Batch`] and all selections are recovered in a
//! single `RecoverEnc` round: two round trips per depth instead of `2m`.

use crate::error::Result;
use sectopk_crypto::paillier::Ciphertext;
use sectopk_crypto::prp::RandomPermutation;
use sectopk_ehl::EhlPlus;
use sectopk_storage::EncryptedItem;

use crate::context::TwoClouds;
use crate::primitives::EqPlan;
use crate::transport::EqWants;

impl TwoClouds {
    /// Compute the encrypted *local* worst score of one item against the other items `h`
    /// seen at the same depth — Protocol 8.1 / Algorithm 4.
    pub fn sec_worst(
        &mut self,
        item: &EncryptedItem,
        others: &[&EncryptedItem],
        depth: usize,
    ) -> Result<Ciphertext> {
        let jobs = vec![(item, others.to_vec())];
        Ok(self.worst_many(&jobs, depth)?.pop().expect("one job in, one score out"))
    }

    /// Compute the local worst scores of **all** `m` items appearing at depth `d`
    /// (one per queried list) — the way Algorithm 3 line 5 invokes SecWorst.
    pub fn sec_worst_depth(
        &mut self,
        depth_items: &[EncryptedItem],
        depth: usize,
    ) -> Result<Vec<Ciphertext>> {
        let jobs: Vec<(&EncryptedItem, Vec<&EncryptedItem>)> = depth_items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let others: Vec<&EncryptedItem> = depth_items
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, it)| it)
                    .collect();
                (item, others)
            })
            .collect();
        self.worst_many(&jobs, depth)
    }

    /// Shared driver: one equality plan per item (all shipped in one batched round),
    /// then one combined selection/recovery round for every matched score.
    fn worst_many(
        &mut self,
        jobs: &[(&EncryptedItem, Vec<&EncryptedItem>)],
        depth: usize,
    ) -> Result<Vec<Ciphertext>> {
        let pk = self.s1.keys.paillier_public.clone();

        // ---- S1: permute the comparison targets so S2 cannot attribute equality bits to
        //      particular lists (Algorithm 4, line 2), then build one plan per item. -----
        let mut plans = Vec::new();
        let mut job_scores: Vec<Vec<Ciphertext>> = Vec::with_capacity(jobs.len());
        for (item, others) in jobs {
            if others.is_empty() {
                job_scores.push(Vec::new());
                continue;
            }
            let perm = RandomPermutation::sample(others.len(), &mut self.s1.rng);
            let permuted: Vec<&EncryptedItem> = perm.permute(others);
            let pairs: Vec<(&EhlPlus, &EhlPlus)> =
                permuted.iter().map(|other| (&item.ehl, &other.ehl)).collect();
            let diffs = self.eq_diffs(&pairs);
            plans.push(EqPlan {
                cols: diffs.len(),
                diffs,
                context: "sec_worst",
                depth: Some(depth),
                want: EqWants::none(),
            });
            job_scores.push(permuted.iter().map(|o| o.score.clone()).collect());
        }
        let outcomes = self.run_eq_plans(plans)?;

        // ---- S1: one combined selection across all items, then slice per item. ---------
        let mut all_bits = Vec::new();
        let mut all_scores = Vec::new();
        let mut outcome_iter = outcomes.into_iter();
        let mut spans: Vec<usize> = Vec::with_capacity(jobs.len());
        for scores in &job_scores {
            if scores.is_empty() {
                spans.push(0);
                continue;
            }
            let outcome = outcome_iter.next().expect("one outcome per non-empty job");
            spans.push(scores.len());
            all_bits.extend(outcome.bits);
            all_scores.extend(scores.iter().cloned());
        }
        let selected = self.select_scores(&all_bits, &all_scores)?;

        let mut worsts = Vec::with_capacity(jobs.len());
        let mut offset = 0usize;
        for ((item, _), span) in jobs.iter().zip(spans) {
            let mut worst = item.score.clone();
            for s in &selected[offset..offset + span] {
                worst = pk.add(&worst, s);
            }
            offset += span;
            worsts.push(self.s1.pool.rerandomize(&worst));
        }
        Ok(worsts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::keys::MasterKeys;
    use sectopk_crypto::paillier::MIN_MODULUS_BITS;
    use sectopk_ehl::EhlEncoder;
    use sectopk_storage::ObjectId;

    fn make_item(
        object: ObjectId,
        score: u64,
        encoder: &EhlEncoder,
        pk: &sectopk_crypto::PaillierPublicKey,
        rng: &mut StdRng,
    ) -> EncryptedItem {
        EncryptedItem {
            ehl: encoder.encode(&object.to_bytes(), pk, rng).unwrap(),
            score: pk.encrypt_u64(score, rng).unwrap(),
        }
    }

    fn setup() -> (MasterKeys, TwoClouds, EhlEncoder, StdRng) {
        let mut rng = StdRng::seed_from_u64(61);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 3, &mut rng).unwrap();
        let clouds = TwoClouds::new(&master, 6).unwrap();
        let encoder = EhlEncoder::new(&master.ehl_keys);
        (master, clouds, encoder, rng)
    }

    #[test]
    fn fig3_depth1_worst_scores() {
        // Fig. 3a: at depth 1 the items are X1/10 (R1), X2/8 (R2), X4/8 (R3); no object
        // repeats, so every local worst score equals the item's own score.
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let items = vec![
            make_item(ObjectId(1), 10, &encoder, pk, &mut rng),
            make_item(ObjectId(2), 8, &encoder, pk, &mut rng),
            make_item(ObjectId(4), 8, &encoder, pk, &mut rng),
        ];
        let worsts = clouds.sec_worst_depth(&items, 1).unwrap();
        let values: Vec<u64> =
            worsts.iter().map(|c| master.paillier_secret.decrypt_u64(c).unwrap()).collect();
        assert_eq!(values, vec![10, 8, 8]);
    }

    #[test]
    fn repeated_object_sums_its_scores() {
        // If the same object appears in two lists at this depth, both copies get the sum.
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let items = vec![
            make_item(ObjectId(7), 5, &encoder, pk, &mut rng),
            make_item(ObjectId(7), 9, &encoder, pk, &mut rng),
            make_item(ObjectId(8), 3, &encoder, pk, &mut rng),
        ];
        let worsts = clouds.sec_worst_depth(&items, 2).unwrap();
        let values: Vec<u64> =
            worsts.iter().map(|c| master.paillier_secret.decrypt_u64(c).unwrap()).collect();
        assert_eq!(values, vec![14, 14, 3]);
    }

    #[test]
    fn single_list_worst_is_own_score() {
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let item = make_item(ObjectId(1), 42, &encoder, pk, &mut rng);
        let worst = clouds.sec_worst(&item, &[], 0).unwrap();
        assert_eq!(master.paillier_secret.decrypt_u64(&worst).unwrap(), 42);
        assert_eq!(clouds.channel().total_messages(), 0);
    }

    #[test]
    fn whole_depth_costs_two_rounds_when_batched() {
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let items = vec![
            make_item(ObjectId(1), 1, &encoder, pk, &mut rng),
            make_item(ObjectId(2), 2, &encoder, pk, &mut rng),
            make_item(ObjectId(3), 3, &encoder, pk, &mut rng),
        ];
        let _ = clouds.sec_worst_depth(&items, 0).unwrap();
        // One batched equality round + one combined RecoverEnc round.
        assert_eq!(clouds.channel().rounds, 2);
    }

    #[test]
    fn s2_sees_only_equality_bits() {
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let items = vec![
            make_item(ObjectId(1), 1, &encoder, pk, &mut rng),
            make_item(ObjectId(2), 2, &encoder, pk, &mut rng),
            make_item(ObjectId(1), 3, &encoder, pk, &mut rng),
        ];
        let _ = clouds.sec_worst_depth(&items, 4).unwrap();
        assert!(clouds.s2_ledger().only_contains(&["equality_bit"]));
        assert!(clouds.s1_ledger().is_empty());
        // m items, each compared against m−1 others.
        assert_eq!(clouds.s2_ledger().count_kind("equality_bit"), 6);
    }
}
