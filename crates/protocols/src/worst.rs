//! `SecWorst` (Algorithm 4): the per-depth worst-score (lower-bound) computation.
//!
//! At depth `d`, for the item `E(I_i) = ⟨EHL(o_i), Enc(x_i)⟩` of list `i`, the worst
//! score *based on the current depth only* is
//!
//! ```text
//! W(o_i) = x_i + Σ_{j ≠ i, o_j = o_i at depth d} x_j
//! ```
//!
//! i.e. the sum of the object's scores over every list where it appears at this depth.
//! S1 cannot evaluate the condition `o_j = o_i` itself; it sends the randomly permuted
//! `⊖` results to S2, which decrypts them (learning only the equality pattern) and
//! replies with `E2(t_j)`; S1 then evaluates the Damgård–Jurik selection
//! `E2(t_j)^{Enc(x_j)} · (E2(1)·E2(t_j)^{-1})^{Enc(0)}` and recovers `Enc(t_j · x_j)`
//! via `RecoverEnc` — exactly the steps of Algorithm 4.

use sectopk_crypto::paillier::Ciphertext;
use sectopk_crypto::prp::RandomPermutation;
use sectopk_crypto::Result;
use sectopk_ehl::EhlPlus;
use sectopk_storage::EncryptedItem;

use crate::context::TwoClouds;

impl TwoClouds {
    /// Compute the encrypted *local* worst score of one item against the other items `h`
    /// seen at the same depth — Protocol 8.1 / Algorithm 4.
    pub fn sec_worst(
        &mut self,
        item: &EncryptedItem,
        others: &[&EncryptedItem],
        depth: usize,
    ) -> Result<Ciphertext> {
        let pk = self.s1.keys.paillier_public.clone();
        if others.is_empty() {
            // No other lists: the worst score is the item's own (re-randomized) score.
            return Ok(pk.rerandomize(&item.score, &mut self.s1.rng));
        }

        // ---- S1: permute the comparison targets so S2 cannot attribute equality bits to
        //      particular lists (Algorithm 4, line 2). -----------------------------------
        let perm = RandomPermutation::sample(others.len(), &mut self.s1.rng);
        let permuted: Vec<&EncryptedItem> = perm.permute(others);

        let pairs: Vec<(&EhlPlus, &EhlPlus)> =
            permuted.iter().map(|other| (&item.ehl, &other.ehl)).collect();
        let batch = self.eq_batch(&pairs, "sec_worst", Some(depth))?;

        // ---- S1: select each matching score and sum them up (lines 6-8). ----------------
        let scores: Vec<Ciphertext> = permuted.iter().map(|o| o.score.clone()).collect();
        let selected = self.select_scores(&batch.e2_bits, &scores)?;

        let mut worst = item.score.clone();
        for s in &selected {
            worst = pk.add(&worst, s);
        }
        Ok(pk.rerandomize(&worst, &mut self.s1.rng))
    }

    /// Compute the local worst scores of **all** `m` items appearing at depth `d`
    /// (one per queried list) — the way Algorithm 3 line 5 invokes SecWorst.
    pub fn sec_worst_depth(
        &mut self,
        depth_items: &[EncryptedItem],
        depth: usize,
    ) -> Result<Vec<Ciphertext>> {
        let mut worsts = Vec::with_capacity(depth_items.len());
        for (i, item) in depth_items.iter().enumerate() {
            let others: Vec<&EncryptedItem> =
                depth_items.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, it)| it).collect();
            worsts.push(self.sec_worst(item, &others, depth)?);
        }
        Ok(worsts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::keys::MasterKeys;
    use sectopk_crypto::paillier::MIN_MODULUS_BITS;
    use sectopk_ehl::EhlEncoder;
    use sectopk_storage::ObjectId;

    fn make_item(
        object: ObjectId,
        score: u64,
        encoder: &EhlEncoder,
        pk: &sectopk_crypto::PaillierPublicKey,
        rng: &mut StdRng,
    ) -> EncryptedItem {
        EncryptedItem {
            ehl: encoder.encode(&object.to_bytes(), pk, rng).unwrap(),
            score: pk.encrypt_u64(score, rng).unwrap(),
        }
    }

    fn setup() -> (MasterKeys, TwoClouds, EhlEncoder, StdRng) {
        let mut rng = StdRng::seed_from_u64(61);
        let master = MasterKeys::generate(MIN_MODULUS_BITS, 3, &mut rng).unwrap();
        let clouds = TwoClouds::new(&master, 6).unwrap();
        let encoder = EhlEncoder::new(&master.ehl_keys);
        (master, clouds, encoder, rng)
    }

    #[test]
    fn fig3_depth1_worst_scores() {
        // Fig. 3a: at depth 1 the items are X1/10 (R1), X2/8 (R2), X4/8 (R3); no object
        // repeats, so every local worst score equals the item's own score.
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let items = vec![
            make_item(ObjectId(1), 10, &encoder, pk, &mut rng),
            make_item(ObjectId(2), 8, &encoder, pk, &mut rng),
            make_item(ObjectId(4), 8, &encoder, pk, &mut rng),
        ];
        let worsts = clouds.sec_worst_depth(&items, 1).unwrap();
        let values: Vec<u64> =
            worsts.iter().map(|c| master.paillier_secret.decrypt_u64(c).unwrap()).collect();
        assert_eq!(values, vec![10, 8, 8]);
    }

    #[test]
    fn repeated_object_sums_its_scores() {
        // If the same object appears in two lists at this depth, both copies get the sum.
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let items = vec![
            make_item(ObjectId(7), 5, &encoder, pk, &mut rng),
            make_item(ObjectId(7), 9, &encoder, pk, &mut rng),
            make_item(ObjectId(8), 3, &encoder, pk, &mut rng),
        ];
        let worsts = clouds.sec_worst_depth(&items, 2).unwrap();
        let values: Vec<u64> =
            worsts.iter().map(|c| master.paillier_secret.decrypt_u64(c).unwrap()).collect();
        assert_eq!(values, vec![14, 14, 3]);
    }

    #[test]
    fn single_list_worst_is_own_score() {
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let item = make_item(ObjectId(1), 42, &encoder, pk, &mut rng);
        let worst = clouds.sec_worst(&item, &[], 0).unwrap();
        assert_eq!(master.paillier_secret.decrypt_u64(&worst).unwrap(), 42);
        assert_eq!(clouds.channel().total_messages(), 0);
    }

    #[test]
    fn s2_sees_only_equality_bits() {
        let (master, mut clouds, encoder, mut rng) = setup();
        let pk = &master.paillier_public;
        let items = vec![
            make_item(ObjectId(1), 1, &encoder, pk, &mut rng),
            make_item(ObjectId(2), 2, &encoder, pk, &mut rng),
            make_item(ObjectId(1), 3, &encoder, pk, &mut rng),
        ];
        let _ = clouds.sec_worst_depth(&items, 4).unwrap();
        assert!(clouds.s2_ledger().only_contains(&["equality_bit"]));
        assert!(clouds.s1_ledger().is_empty());
        // m items, each compared against m−1 others.
        assert_eq!(clouds.s2_ledger().count_kind("equality_bit"), 6);
    }
}
