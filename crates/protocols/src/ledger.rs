//! Leakage ledgers.
//!
//! The CQA security analysis of §9 is phrased in terms of *leakage functions*: the only
//! information each cloud may learn during a query is
//!
//! * S1: the query pattern `QP` and the halting depth `D_q` (plus, for the optimized
//!   `Qry_E`, the per-depth uniqueness pattern `UP^d`),
//! * S2: the per-depth equality pattern `EP^d` — a permuted binary matrix saying how many
//!   (anonymous) items at that depth coincide.
//!
//! Every sub-protocol in this crate records what it reveals to each party in that party's
//! [`LeakageLedger`].  The integration tests then assert that the recorded views contain
//! *nothing but* the events allowed by the corresponding leakage profile — an executable
//! rendition of Theorem 9.2.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One observation made by a cloud during protocol execution.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeakageEvent {
    /// The party learned an equality bit between two (permuted, anonymous) items.
    /// Part of the equality pattern `EP^d` revealed to S2.
    EqualityBit {
        /// Which sub-protocol produced the bit (e.g. "sec_worst", "sec_dedup").
        context: String,
        /// Depth of the scan when the bit was observed, if applicable.
        depth: Option<usize>,
        /// The observed bit (true ⇔ the two anonymous items hide the same object).
        equal: bool,
    },
    /// The party learned the outcome of a comparison between two blinded values
    /// (EncCompare / EncSort comparator).  Revealed to S1.
    ComparisonBit {
        /// Which sub-protocol produced the bit.
        context: String,
        /// The observed ordering bit.
        less_or_equal: bool,
    },
    /// The party learned the sign of a blinded, randomly flipped difference.
    /// Revealed to S2 by the comparison sub-protocol; the flip makes it uniform.
    BlindedSign {
        /// Which sub-protocol produced it.
        context: String,
    },
    /// The party learned how many distinct objects appear in a permuted item list
    /// (the uniqueness pattern `UP^d` of the `SecDupElim` optimisation, §10.1).
    UniqueCount {
        /// Depth of the scan.
        depth: usize,
        /// Number of distinct (anonymous) objects.
        count: usize,
    },
    /// The party learned the halting depth of a query (part of `L¹_Query`).
    HaltingDepth(usize),
    /// The party learned that a query with this (hashed) token was issued — the query
    /// pattern `QP`.
    QueryIssued {
        /// Opaque token fingerprint (reveals only query repetition).
        token_fingerprint: u64,
    },
    /// The party learned how many joined tuples satisfied the equi-join condition
    /// (SecJoin / SecFilter, §12.4).
    JoinMatchCount(usize),
}

impl LeakageEvent {
    /// A short machine-friendly label for the event kind.
    pub fn kind(&self) -> &'static str {
        match self {
            LeakageEvent::EqualityBit { .. } => "equality_bit",
            LeakageEvent::ComparisonBit { .. } => "comparison_bit",
            LeakageEvent::BlindedSign { .. } => "blinded_sign",
            LeakageEvent::UniqueCount { .. } => "unique_count",
            LeakageEvent::HaltingDepth(_) => "halting_depth",
            LeakageEvent::QueryIssued { .. } => "query_issued",
            LeakageEvent::JoinMatchCount(_) => "join_match_count",
        }
    }
}

/// The record of everything one party observed beyond its own inputs.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LeakageLedger {
    events: Vec<LeakageEvent>,
}

impl LeakageLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an observation.
    pub fn record(&mut self, event: LeakageEvent) {
        self.events.push(event);
    }

    /// All recorded events, in order.
    pub fn events(&self) -> &[LeakageEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Histogram of event kinds (used by the leakage-profile tests).
    pub fn kind_histogram(&self) -> BTreeMap<&'static str, usize> {
        let mut hist = BTreeMap::new();
        for e in &self.events {
            *hist.entry(e.kind()).or_insert(0) += 1;
        }
        hist
    }

    /// True when every recorded event kind is in `allowed` — the executable form of
    /// "the party's view is simulatable from the leakage profile".
    pub fn only_contains(&self, allowed: &[&str]) -> bool {
        self.events.iter().all(|e| allowed.contains(&e.kind()))
    }

    /// Count the events of one kind.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind() == kind).count()
    }

    /// Clear the ledger (e.g. between queries).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_inspect() {
        let mut ledger = LeakageLedger::new();
        assert!(ledger.is_empty());
        ledger.record(LeakageEvent::EqualityBit {
            context: "sec_worst".into(),
            depth: Some(3),
            equal: true,
        });
        ledger.record(LeakageEvent::HaltingDepth(7));
        ledger.record(LeakageEvent::EqualityBit {
            context: "sec_dedup".into(),
            depth: Some(3),
            equal: false,
        });
        assert_eq!(ledger.len(), 3);
        assert_eq!(ledger.count_kind("equality_bit"), 2);
        assert_eq!(ledger.kind_histogram()["halting_depth"], 1);
    }

    #[test]
    fn only_contains_enforces_profiles() {
        let mut ledger = LeakageLedger::new();
        ledger.record(LeakageEvent::ComparisonBit {
            context: "enc_sort".into(),
            less_or_equal: true,
        });
        assert!(ledger.only_contains(&["comparison_bit", "halting_depth"]));
        assert!(!ledger.only_contains(&["equality_bit"]));
    }

    #[test]
    fn clear_resets() {
        let mut ledger = LeakageLedger::new();
        ledger.record(LeakageEvent::JoinMatchCount(5));
        ledger.clear();
        assert!(ledger.is_empty());
    }

    #[test]
    fn kinds_are_stable_labels() {
        assert_eq!(LeakageEvent::HaltingDepth(1).kind(), "halting_depth");
        assert_eq!(LeakageEvent::UniqueCount { depth: 1, count: 2 }.kind(), "unique_count");
        assert_eq!(LeakageEvent::QueryIssued { token_fingerprint: 9 }.kind(), "query_issued");
        assert_eq!(LeakageEvent::BlindedSign { context: "x".into() }.kind(), "blinded_sign");
    }
}
