//! Fast standalone smoke test: stand up a query server around a tiny encrypted
//! relation and serve a 4-query workload over 2 concurrent sessions.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::DataOwner;
use sectopk_datasets::{QueryWorkload, WorkloadSpec};
use sectopk_server::{QueryServer, ServeConfig};
use sectopk_storage::{ObjectId, Relation, Row};

#[test]
fn serve_a_small_workload_over_two_sessions() {
    let mut rng = StdRng::seed_from_u64(0x5E);
    let owner = DataOwner::new(128, 2, &mut rng).expect("keygen");
    let relation = Relation::from_rows(vec![
        Row { id: ObjectId(1), values: vec![9, 1] },
        Row { id: ObjectId(2), values: vec![4, 6] },
        Row { id: ObjectId(3), values: vec![2, 2] },
    ]);
    let (outsourced, _) = owner.outsource(&relation, &mut rng).expect("encryption");

    let spec = WorkloadSpec { queries: 4, m_range: (1, 2), k_range: (1, 2) };
    let workload = QueryWorkload::generate(&spec, relation.num_attributes(), 11);

    let server = QueryServer::new(owner.keys(), outsourced, 2);
    let report = server.serve(&workload, &ServeConfig::new(2, 0xFEED)).expect("serve");

    assert_eq!(report.queries, 4);
    assert_eq!(report.sessions.len(), 2);
    for session in &report.sessions {
        assert_eq!(session.outcomes.len(), 2, "round-robin deal: two queries each");
        assert!(session.metrics.rounds > 0);
        assert!(!session.s2_ledger.is_empty(), "each session's S2 view is populated");
        for outcome in &session.outcomes {
            assert!(!outcome.top_k.is_empty());
        }
    }
    assert!(report.throughput_qps() > 0.0);
    assert_eq!(server.s2_workers(), 2);
    assert_eq!(server.relation().num_attributes(), 2);
}
