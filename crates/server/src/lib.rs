//! # sectopk-server
//!
//! Multi-session top-k query serving: the paper's two-cloud construction run as a
//! *service* instead of a single-shot protocol.
//!
//! A [`QueryServer`] owns the outsourced encrypted relation and a shared
//! [`MultiplexServer`] — the crypto cloud S2 as a worker-thread pool.  Every client
//! session is one [`QueryClient`]: an S1-side execution context connected to the shared
//! S2 over the session-tagged envelope channel, running `sec_query` for a stream of
//! [`TopKQuery`]s and keeping its own [`ChannelMetrics`] and per-party
//! [`LeakageLedger`]s.
//!
//! ```text
//!   client 1 ── TopKQuery stream ──▶ QueryClient 1 (S1 state, session 1) ──┐
//!   client 2 ── TopKQuery stream ──▶ QueryClient 2 (S1 state, session 2) ──┤ envelopes
//!      …                                   …                               ├──────────▶ S2
//!   client N ── TopKQuery stream ──▶ QueryClient N (S1 state, session N) ──┘ worker pool
//! ```
//!
//! # Determinism guarantees
//!
//! Session *i* derives every random choice (S1 RNG, nonce-pool shards, the session's
//! S2 engine) from `shard_seed(base_seed, i)`, and all server-side mutable state is
//! per-session.  Consequently [`QueryServer::serve`] (all sessions concurrently, S2
//! worker pool) and [`QueryServer::serve_serial`] (same sessions one after another)
//! produce **byte-identical** per-session results, metrics and ledgers — scheduling
//! and interleaving are unobservable.  `tests/concurrent_sessions.rs` asserts this for
//! 16 concurrent sessions.
//!
//! # Knobs
//!
//! [`ServeConfig`] controls the serving shape: `sessions` (concurrent S1 clients),
//! `batching` (round-trip batching policy), `link` (simulated inter-cloud RTT — the
//! §11.2.5 WAN), and the query-processing variant; the S2 pool width is set at
//! [`QueryServer::new`].  The `throughput` bench sweeps `sessions` ∈ {1, 4, 8, 16}
//! over a latency-bound link and records `BENCH_throughput.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use std::time::Instant;

use sectopk_core::{sec_query, AuthorizedClient, QueryConfig, QueryOutcome};
use sectopk_crypto::keys::MasterKeys;
use sectopk_crypto::pool::shard_seed;
use sectopk_crypto::{CryptoError, Result};
use sectopk_datasets::QueryWorkload;
use sectopk_protocols::{
    ChannelMetrics, LeakageLedger, LinkProfile, MultiplexServer, SessionId, TwoClouds,
};
use sectopk_storage::{EncryptedRelation, TopKQuery};

/// Shape of one serving run: how many concurrent sessions and how each query executes.
/// (The S2 worker-pool width is a property of the [`QueryServer`] itself, set at
/// construction.)
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Number of concurrent S1 sessions (client connections).
    pub sessions: usize,
    /// Round-trip batching policy for every session (see `TwoClouds::batching`).
    pub batching: bool,
    /// Query-processing variant and depth cap.
    pub query: QueryConfig,
    /// Base seed; session `i` runs under `shard_seed(base_seed, i)`.
    pub base_seed: u64,
    /// Simulated inter-cloud link (ideal by default; a nonzero RTT models the WAN).
    pub link: LinkProfile,
}

impl ServeConfig {
    /// A serving configuration with `sessions` concurrent sessions, batching on, the
    /// full-privacy query variant, and an ideal link.
    pub fn new(sessions: usize, base_seed: u64) -> Self {
        ServeConfig {
            sessions,
            batching: true,
            query: QueryConfig::full(),
            base_seed,
            link: LinkProfile::ideal(),
        }
    }

    /// Replace the simulated link profile.
    pub fn with_link(mut self, link: LinkProfile) -> Self {
        self.link = link;
        self
    }

    /// Replace the query configuration.
    pub fn with_query(mut self, query: QueryConfig) -> Self {
        self.query = query;
        self
    }
}

/// Everything one session observed and produced over its lifetime.
#[derive(Debug)]
pub struct SessionReport {
    /// The session's id.
    pub session: SessionId,
    /// The session's derived seed (for replaying it in isolation).
    pub seed: u64,
    /// One outcome per executed query, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// The session's cumulative channel traffic.
    pub metrics: ChannelMetrics,
    /// Everything this session's S1 observed.
    pub s1_ledger: LeakageLedger,
    /// Everything this session's S2 engine observed (isolated per session).
    pub s2_ledger: LeakageLedger,
}

/// The result of serving one workload: per-session reports plus aggregate timing.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-session reports, ordered by session id.
    pub sessions: Vec<SessionReport>,
    /// Total number of queries executed across all sessions.
    pub queries: usize,
    /// Wall-clock seconds for the whole run.
    pub wall_seconds: f64,
}

impl ServeReport {
    /// Aggregate throughput in queries per second.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.queries as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// One S1 serving session: a [`TwoClouds`] context connected to the shared S2 pool,
/// executing a stream of queries and accumulating its own metrics and ledgers.
#[derive(Debug)]
pub struct QueryClient {
    session: SessionId,
    seed: u64,
    clouds: TwoClouds,
    er: Arc<EncryptedRelation>,
    auth: AuthorizedClient,
    outcomes: Vec<QueryOutcome>,
}

impl QueryClient {
    /// Execute one top-k query on this session and return its outcome (also appended
    /// to the session's report).  Tokens are generated with the authorized client's key
    /// material, exactly as a real client would submit them.
    pub fn run(&mut self, query: &TopKQuery, config: &QueryConfig) -> Result<&QueryOutcome> {
        let token =
            self.auth.token(self.er.num_attributes(), query).map_err(CryptoError::Protocol)?;
        let outcome = sec_query(&mut self.clouds, &self.er, &token, config)?;
        self.outcomes.push(outcome);
        Ok(self.outcomes.last().expect("just pushed"))
    }

    /// The session this client speaks for.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The session's cumulative channel traffic so far.
    pub fn metrics(&self) -> ChannelMetrics {
        self.clouds.channel()
    }

    /// Close the session and collect its report (metrics, both ledgers, all outcomes).
    pub fn finish(self) -> SessionReport {
        let metrics = self.clouds.channel();
        let s1_ledger = self.clouds.s1_ledger().clone();
        let s2_ledger = self.clouds.s2_ledger();
        SessionReport {
            session: self.session,
            seed: self.seed,
            outcomes: self.outcomes,
            metrics,
            s1_ledger,
            s2_ledger,
        }
    }
}

/// The serving front door: the encrypted relation plus the shared S2 worker pool, from
/// which any number of client sessions can be opened.
#[derive(Debug)]
pub struct QueryServer {
    master: MasterKeys,
    er: Arc<EncryptedRelation>,
    s2: MultiplexServer,
}

impl QueryServer {
    /// Stand up a server around an already-encrypted relation with `s2_workers` S2
    /// worker threads.  The master keys play both owner roles: S1 views are handed to
    /// each session, S2 views to each session's engine (Figure 1 of the paper).
    pub fn new(master: &MasterKeys, er: EncryptedRelation, s2_workers: usize) -> Self {
        QueryServer {
            master: master.clone(),
            er: Arc::new(er),
            s2: MultiplexServer::new(s2_workers),
        }
    }

    /// The encrypted relation being served.
    pub fn relation(&self) -> &EncryptedRelation {
        &self.er
    }

    /// Number of S2 worker threads.
    pub fn s2_workers(&self) -> usize {
        self.s2.workers()
    }

    /// Open session `session` with an explicit seed (used by the determinism tests to
    /// replay one session in isolation).
    pub fn open_session(
        &self,
        session: SessionId,
        seed: u64,
        batching: bool,
        link: LinkProfile,
    ) -> Result<QueryClient> {
        let clouds = TwoClouds::connect(&self.master, seed, batching, &self.s2, session, link)?;
        Ok(QueryClient {
            session,
            seed,
            clouds,
            er: Arc::clone(&self.er),
            auth: AuthorizedClient::from_keys(self.master.clone()),
            outcomes: Vec::new(),
        })
    }

    /// Open session `i` of a serving run configured by `config` (seed =
    /// `shard_seed(base_seed, i)`).
    pub fn open_configured(&self, i: u64, config: &ServeConfig) -> Result<QueryClient> {
        self.open_session(
            SessionId(i),
            shard_seed(config.base_seed, i),
            config.batching,
            config.link,
        )
    }

    /// The whole lifetime of serving session `i`: open, run its query stream, report.
    /// Both [`QueryServer::serve`] and [`QueryServer::serve_serial`] execute exactly
    /// this — which is what makes the serial run a faithful determinism oracle for the
    /// concurrent one.
    fn run_session(
        &self,
        i: usize,
        queries: &[TopKQuery],
        config: &ServeConfig,
    ) -> Result<SessionReport> {
        let mut client = self.open_configured(i as u64 + 1, config)?;
        for query in queries {
            client.run(query, &config.query)?;
        }
        Ok(client.finish())
    }

    /// Serve `workload` with `config.sessions` concurrent sessions: queries are dealt
    /// round-robin ([`QueryWorkload::partition`]), each session runs its stream on its
    /// own thread against the shared S2 pool, and the per-session reports come back in
    /// session order.
    pub fn serve(&self, workload: &QueryWorkload, config: &ServeConfig) -> Result<ServeReport> {
        let partitions = workload.partition(config.sessions.max(1));
        let start = Instant::now();
        let mut reports: Vec<SessionReport> = Vec::with_capacity(partitions.len());
        std::thread::scope(|scope| -> Result<()> {
            let handles: Vec<_> = partitions
                .iter()
                .enumerate()
                .map(|(i, queries)| scope.spawn(move || self.run_session(i, queries, config)))
                .collect();
            for handle in handles {
                reports.push(handle.join().expect("session thread panicked")?);
            }
            Ok(())
        })?;
        Ok(ServeReport {
            sessions: reports,
            queries: workload.queries.len(),
            wall_seconds: start.elapsed().as_secs_f64(),
        })
    }

    /// The serial reference execution: the same sessions, seeds and query streams as
    /// [`QueryServer::serve`], but run one session after another.  Produces
    /// byte-identical per-session reports — the determinism oracle for the concurrency
    /// tests, and the 1-way baseline for the throughput bench.
    pub fn serve_serial(
        &self,
        workload: &QueryWorkload,
        config: &ServeConfig,
    ) -> Result<ServeReport> {
        let partitions = workload.partition(config.sessions.max(1));
        let start = Instant::now();
        let reports = partitions
            .iter()
            .enumerate()
            .map(|(i, queries)| self.run_session(i, queries, config))
            .collect::<Result<Vec<_>>>()?;
        Ok(ServeReport {
            sessions: reports,
            queries: workload.queries.len(),
            wall_seconds: start.elapsed().as_secs_f64(),
        })
    }
}
