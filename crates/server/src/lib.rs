//! # sectopk-server
//!
//! Multi-session top-k query serving: the paper's two-cloud construction run as a
//! *service* instead of a single-shot protocol.
//!
//! A [`QueryServer`] owns the outsourced encrypted relation and a shared
//! [`MultiplexServer`] — the crypto cloud S2 as a worker-thread pool.  Every client
//! session is one [`QueryClient`]: an S1-side execution context connected to the shared
//! S2 over the session-tagged envelope channel.  `QueryClient` implements the
//! [`Session`] trait from `sectopk-core`, so the serving path and the direct two-cloud
//! path expose the same `execute(Query) → ResolvedTopK` front door, including the
//! adaptive variant planner.
//!
//! ```text
//!   client 1 ── Query stream ──▶ QueryClient 1 (S1 state, session 1) ──┐
//!   client 2 ── Query stream ──▶ QueryClient 2 (S1 state, session 2) ──┤ envelopes
//!      …                               …                               ├──────────▶ S2
//!   client N ── Query stream ──▶ QueryClient N (S1 state, session N) ──┘ worker pool
//! ```
//!
//! # Determinism guarantees
//!
//! Session *i* derives every random choice (S1 RNG, nonce-pool shards, the session's
//! S2 engine, the resolution RNG) from `shard_seed(base_seed, i)`, and all server-side
//! mutable state is per-session.  Consequently [`QueryServer::serve`] (all sessions
//! concurrently, S2 worker pool) and [`QueryServer::serve_serial`] (same sessions one
//! after another) produce **byte-identical** per-session results, metrics and ledgers —
//! scheduling and interleaving are unobservable.  `tests/concurrent_sessions.rs`
//! asserts this for 16 concurrent sessions.
//!
//! # Failure isolation
//!
//! A query that fails — an invalid attribute set, a malformed request answered by S2
//! with a typed error frame — is recorded in the session's [`SessionReport::failures`]
//! and serving continues; one misbehaving session can never take down the worker pool
//! or its neighbours (`tests/concurrent_sessions.rs` has the regression test).
//!
//! # Knobs
//!
//! [`ServeConfig`] controls the serving shape: `sessions` (concurrent S1 clients),
//! `batching` (round-trip batching policy), `link` (simulated inter-cloud RTT — the
//! §11.2.5 WAN), and `variant` — [`VariantChoice::Auto`] lets the planner pick
//! `Qry_F`/`Qry_E`/`Qry_Ba` per query; the decision lands in each outcome's
//! [`QueryStats::plan`](sectopk_core::QueryStats) so `BENCH_throughput.json` runs are
//! self-describing.  The S2 pool width is set at [`QueryServer::new`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;

use sectopk_core::{
    execute_with_clouds, AuthorizedClient, Outsourced, PlanDecision, Query, QueryOutcome,
    ResolvedTopK, Result, SecTopKError, Session, VariantChoice,
};
use sectopk_crypto::keys::MasterKeys;
use sectopk_crypto::pool::shard_seed;
use sectopk_datasets::QueryWorkload;
use sectopk_metrics::{Counter, Histogram, MetricsSnapshot, Registry};
use sectopk_protocols::{
    ChannelMetrics, FaultPlan, LeakageLedger, LinkProfile, MultiplexServer, PoolLimits,
    ProtocolError, RetryPolicy, SessionId, TcpCloudServer, TcpOptions, TcpServerConfig, TwoClouds,
};
use sectopk_storage::{EncryptedRelation, TopKQuery};

/// How many ready nonces of each kind the between-queries idle refill tops a session's
/// S1 pools up to.  Sized for the opening rounds of a typical query (fresh zeros,
/// selection constants, `E2(t)` re-encryptions) without making the idle gap itself a
/// bottleneck.
const IDLE_REFILL_PAILLIER_NONCES: usize = 16;
const IDLE_REFILL_DJ_NONCES: usize = 8;
const IDLE_REFILL_OWN_NONCES: usize = 8;

/// Shape of one serving run: how many concurrent sessions and how each query executes.
/// (The S2 worker-pool width is a property of the [`QueryServer`] itself, set at
/// construction.)
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Number of concurrent S1 sessions (client connections).
    pub sessions: usize,
    /// Round-trip batching policy for every session (see `TwoClouds::batching`).
    pub batching: bool,
    /// How the processing variant is chosen for every query of the run.
    pub variant: VariantChoice,
    /// Optional cap on scanned depths per query.
    pub max_depth: Option<usize>,
    /// Base seed; session `i` runs under `shard_seed(base_seed, i)`.
    pub base_seed: u64,
    /// Simulated inter-cloud link (ideal by default; a nonzero RTT models the WAN).
    pub link: LinkProfile,
    /// Intra-query worker threads for each session's S1 loops *and* its S2 engine
    /// (default: the `SECTOPK_INTRA_PARALLEL` environment variable, else 1).  Worker
    /// count only changes wall-clock: results, ledgers and metrics are byte-identical.
    pub intra_workers: usize,
    /// Transparent reconnect-resume-resend policy for [`QueryServer::serve_tcp`]
    /// sessions (ignored by the in-process paths, which cannot lose a connection).
    pub retry: RetryPolicy,
    /// Deterministic fault injection for [`QueryServer::serve_tcp`] sessions — the
    /// chaos-soak knob.  With a matching [`RetryPolicy`] enabled, an injected drop is
    /// recovered transparently and the run's reports stay byte-identical.
    pub faults: FaultPlan,
}

impl ServeConfig {
    /// A serving configuration with `sessions` concurrent sessions, batching on, the
    /// full-privacy query variant, and an ideal link.
    pub fn new(sessions: usize, base_seed: u64) -> Self {
        ServeConfig {
            sessions,
            batching: true,
            variant: VariantChoice::Fixed(sectopk_core::QueryVariant::Full),
            max_depth: None,
            base_seed,
            link: LinkProfile::ideal(),
            intra_workers: sectopk_protocols::intra_workers_from_env(),
            retry: RetryPolicy::none(),
            faults: FaultPlan::none(),
        }
    }

    /// Enable transparent retry for networked ([`QueryServer::serve_tcp`]) sessions.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Inject connection faults on `faults`' schedule into networked
    /// ([`QueryServer::serve_tcp`]) sessions.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Replace the simulated link profile.
    pub fn with_link(mut self, link: LinkProfile) -> Self {
        self.link = link;
        self
    }

    /// Replace the intra-query worker count (minimum 1; 1 = fully serial).
    pub fn with_intra_workers(mut self, workers: usize) -> Self {
        self.intra_workers = workers.max(1);
        self
    }

    /// Replace the variant choice ([`VariantChoice::Auto`] hands every query to the
    /// planner).
    pub fn with_variant(mut self, variant: VariantChoice) -> Self {
        self.variant = variant;
        self
    }

    /// The per-query [`Query`] policy this configuration applies to a workload spec.
    fn query_for(&self, spec: &TopKQuery) -> Query {
        let mut query = Query::from_spec(spec.clone()).with_variant(self.variant);
        if let Some(depths) = self.max_depth {
            query = query.with_max_depth(depths);
        }
        query
    }
}

/// One query that failed during a serving run, with its typed error.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryFailure {
    /// Index of the query within the session's stream.
    pub index: usize,
    /// What went wrong.
    pub error: SecTopKError,
}

/// Everything one session observed and produced over its lifetime.
#[derive(Debug)]
pub struct SessionReport {
    /// The session's id.
    pub session: SessionId,
    /// The session's derived seed (for replaying it in isolation).
    pub seed: u64,
    /// One outcome per successfully executed query, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// Queries that failed, with their typed errors; serving continues past them.
    pub failures: Vec<QueryFailure>,
    /// The session's cumulative channel traffic.
    pub metrics: ChannelMetrics,
    /// Everything this session's S1 observed.
    pub s1_ledger: LeakageLedger,
    /// Everything this session's S2 engine observed (isolated per session).
    pub s2_ledger: LeakageLedger,
    /// Transport-level faults this session's connection absorbed without surfacing an
    /// error (reconnect-resume recoveries, shed requests retried to success).  Always
    /// zero for in-process sessions; deterministic under an injected [`FaultPlan`].
    /// Distinct from [`SessionReport::failures`], which are *query* failures.
    pub transport_failures: u64,
}

impl SessionReport {
    /// The planner decisions of the session's executed queries, in submission order.
    pub fn plans(&self) -> Vec<&PlanDecision> {
        self.outcomes.iter().filter_map(|o| o.stats.plan.as_ref()).collect()
    }
}

/// The result of serving one workload: per-session reports plus aggregate timing.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-session reports, ordered by session id.
    pub sessions: Vec<SessionReport>,
    /// Total number of queries submitted across all sessions.
    pub queries: usize,
    /// Wall-clock seconds for the whole run.
    pub wall_seconds: f64,
    /// Snapshot of the server's metrics registry at the end of the run (request
    /// counters, latency histograms, pool and transport counters — see the
    /// `sectopk-metrics` crate).  Empty when the server was built with a disabled
    /// registry.  Serializable, so recorded bench runs can carry it.
    pub metrics: MetricsSnapshot,
}

impl ServeReport {
    /// Aggregate throughput in queries per second.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.queries as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Total number of failed *queries* across all sessions.  Transport faults that
    /// were absorbed by retry are deliberately excluded — a recovered run reports zero
    /// here; see [`ServeReport::transport_failures`] for the absorbed-fault count.
    pub fn error_count(&self) -> usize {
        self.query_failures()
    }

    /// Total number of failed queries across all sessions ([`QueryFailure`] entries).
    /// The explicit name of what [`ServeReport::error_count`] has always counted,
    /// paired with [`ServeReport::transport_failures`] so the two failure classes can
    /// no longer be conflated.
    pub fn query_failures(&self) -> usize {
        self.sessions.iter().map(|s| s.failures.len()).sum()
    }

    /// Total transport-level faults absorbed invisibly by retry across all sessions
    /// (reconnect-resume recoveries, shed requests retried to success).
    pub fn transport_failures(&self) -> u64 {
        self.sessions.iter().map(|s| s.transport_failures).sum()
    }

    /// Histogram of the variants the executed queries ran under, as
    /// `(paper name, batching parameter, count)` rows — what makes a recorded bench run
    /// self-describing about the planner's choices.
    pub fn variant_histogram(&self) -> Vec<(&'static str, Option<usize>, usize)> {
        let mut rows: Vec<(&'static str, Option<usize>, usize)> = Vec::new();
        for session in &self.sessions {
            for plan in session.plans() {
                let key = (plan.variant_name(), plan.batching_parameter());
                match rows.iter_mut().find(|(n, p, _)| (*n, *p) == key) {
                    Some(row) => row.2 += 1,
                    None => rows.push((key.0, key.1, 1)),
                }
            }
        }
        rows
    }
}

/// The serving-layer metric handles one [`QueryClient`] reports into: planner-variant
/// counters are resolved lazily by name (the variant set is open-ended), idle-refill
/// counts and timings through pre-resolved handles.  All no-ops when the server's
/// registry is disabled.
#[derive(Clone, Debug)]
struct ClientMetrics {
    registry: Registry,
    idle_refills: Counter,
    idle_refill_nanos: Histogram,
}

impl ClientMetrics {
    fn from_registry(registry: &Registry) -> Self {
        ClientMetrics {
            registry: registry.clone(),
            idle_refills: registry.counter("serve.idle_refills"),
            idle_refill_nanos: registry.histogram("serve.idle_refill_nanos"),
        }
    }

    fn count_plan(&self, plan: &PlanDecision) {
        if self.registry.is_enabled() {
            self.registry.counter(&format!("serve.planner.{}", plan.variant_name())).incr();
        }
    }
}

/// One S1 serving session: a [`TwoClouds`] context connected to the shared S2 pool,
/// executing queries through the [`Session`] front door and accumulating its own
/// metrics, ledgers and failures.
#[derive(Debug)]
pub struct QueryClient {
    session: SessionId,
    seed: u64,
    clouds: TwoClouds,
    outsourced: Outsourced,
    keys: MasterKeys,
    rng: StdRng,
    outcomes: Vec<QueryOutcome>,
    failures: Vec<QueryFailure>,
    submitted: usize,
    client_metrics: ClientMetrics,
}

impl QueryClient {
    /// The session this client speaks for.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Ship one raw protocol request through this session's transport — the hook the
    /// failure-isolation suite uses to prove that a malformed or mis-sequenced request
    /// comes back as a typed error frame without killing the shared S2 worker pool.
    pub fn send_raw_request(
        &mut self,
        request: sectopk_protocols::S1Request,
    ) -> sectopk_protocols::Result<sectopk_protocols::S2Response> {
        self.clouds.raw_round_trip(request)
    }

    /// Top this session's S1 nonce pools back up while no query is in flight.  Called
    /// by the serving loop between queries; harmless to call at any time (pool streams
    /// are position-deterministic, so eager refilling never changes protocol bytes).
    pub fn idle_refill(&mut self) {
        let timer = self.client_metrics.idle_refill_nanos.start();
        self.clouds.idle_refill(
            IDLE_REFILL_PAILLIER_NONCES,
            IDLE_REFILL_DJ_NONCES,
            IDLE_REFILL_OWN_NONCES,
        );
        self.client_metrics.idle_refill_nanos.stop(timer);
        self.client_metrics.idle_refills.incr();
    }

    /// Close the session and collect its report (metrics, both ledgers, all outcomes
    /// and failures).
    pub fn finish(self) -> SessionReport {
        let metrics = self.clouds.channel();
        let s1_ledger = self.clouds.s1_ledger().clone();
        let s2_ledger = self.clouds.s2_ledger();
        let transport_failures = self.clouds.faults_absorbed();
        SessionReport {
            session: self.session,
            seed: self.seed,
            outcomes: self.outcomes,
            failures: self.failures,
            metrics,
            s1_ledger,
            s2_ledger,
            transport_failures,
        }
    }
}

impl Session for QueryClient {
    fn num_objects(&self) -> usize {
        self.outsourced.num_objects()
    }

    fn num_attributes(&self) -> usize {
        self.outsourced.num_attributes()
    }

    fn link(&self) -> LinkProfile {
        self.clouds.link_profile()
    }

    fn batching(&self) -> bool {
        self.clouds.batching()
    }

    fn execute(&mut self, query: &Query) -> Result<ResolvedTopK> {
        let index = self.submitted;
        self.submitted += 1;
        let outsourced = self.outsourced.clone();
        let resolved = execute_with_clouds(
            &mut self.clouds,
            outsourced.er(),
            outsourced.object_ids(),
            &self.keys,
            &mut self.rng,
            query,
        );
        match resolved {
            Ok(resolved) => {
                if let Some(plan) = resolved.outcome.stats.plan.as_ref() {
                    self.client_metrics.count_plan(plan);
                }
                self.outcomes.push(resolved.outcome.clone());
                Ok(resolved)
            }
            Err(error) => {
                self.failures.push(QueryFailure { index, error: error.clone() });
                Err(error)
            }
        }
    }

    fn metrics(&self) -> ChannelMetrics {
        self.clouds.channel()
    }

    fn s1_ledger(&self) -> LeakageLedger {
        self.clouds.s1_ledger().clone()
    }

    fn s2_ledger(&self) -> LeakageLedger {
        self.clouds.s2_ledger()
    }

    fn reset_accounting(&mut self) {
        self.clouds.reset_accounting();
    }
}

/// The serving front door: the outsourced relation plus the shared S2 worker pool, from
/// which any number of client sessions can be opened.
#[derive(Debug)]
pub struct QueryServer {
    master: MasterKeys,
    outsourced: Outsourced,
    s2: Arc<MultiplexServer>,
    metrics: Registry,
}

impl QueryServer {
    /// Stand up a server around an outsourced relation with `s2_workers` S2 worker
    /// threads.  The master keys play both owner roles: S1 views are handed to each
    /// session, S2 views to each session's engine (Figure 1 of the paper).  Serving
    /// metrics are on by default; use [`Self::with_metrics`] with a disabled
    /// [`Registry`] to strip all instrumentation.
    pub fn new(master: &MasterKeys, outsourced: Outsourced, s2_workers: usize) -> Self {
        Self::with_metrics(master, outsourced, s2_workers, Registry::enabled())
    }

    /// [`Self::new`] with an explicit metrics [`Registry`].  The registry is shared by
    /// the S2 worker pool, every session's transport and the serving loop itself, so a
    /// single [`Self::metrics_snapshot`] covers the whole stack.  Instrumentation is
    /// strictly observational: enabled or not, protocol bytes, ledgers and
    /// [`ChannelMetrics`] are byte-identical (see `tests/metrics_invariance.rs`).
    pub fn with_metrics(
        master: &MasterKeys,
        outsourced: Outsourced,
        s2_workers: usize,
        metrics: Registry,
    ) -> Self {
        QueryServer {
            master: master.clone(),
            outsourced,
            s2: Arc::new(MultiplexServer::with_limits_and_metrics(
                s2_workers,
                PoolLimits::default(),
                metrics.clone(),
            )),
            metrics,
        }
    }

    /// The live metrics registry — poll it mid-run, or hand it to other components
    /// that should report into the same snapshot.
    pub fn metrics_registry(&self) -> &Registry {
        &self.metrics
    }

    /// A point-in-time snapshot of every counter, gauge and histogram — safe to call
    /// concurrently with serving (the live polling API).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Expose this server's S2 worker pool on a TCP listener at `addr` (e.g.
    /// `"127.0.0.1:0"` for an ephemeral port) — the `sectopk-s2d` serving shape.
    /// Networked sessions ([`sectopk_core::RemoteSession`] /
    /// `DataOwner::connect_remote`) and in-process sessions ([`Self::open_session`])
    /// are served by the *same* worker pool, so mixing them is safe and their ledgers
    /// stay per session.
    pub fn listen(&self, addr: &str) -> Result<TcpCloudServer> {
        TcpCloudServer::serve_pool(addr, Arc::clone(&self.s2), TcpServerConfig::default()).map_err(
            |e| ProtocolError::transport(format!("binding S2 listener at {addr}: {e}")).into(),
        )
    }

    /// The encrypted relation being served.
    pub fn relation(&self) -> &EncryptedRelation {
        self.outsourced.er()
    }

    /// The outsourced bundle (encrypted relation plus resolution universe).
    pub fn outsourced(&self) -> &Outsourced {
        &self.outsourced
    }

    /// Number of S2 worker threads.
    pub fn s2_workers(&self) -> usize {
        self.s2.workers()
    }

    /// An authorized client bound to this server's key material (token generation on
    /// behalf of connected clients).
    pub fn authorize_client(&self) -> AuthorizedClient {
        AuthorizedClient::from_keys(self.master.clone())
    }

    /// Open session `session` with an explicit seed (used by the determinism tests to
    /// replay one session in isolation).
    pub fn open_session(
        &self,
        session: SessionId,
        seed: u64,
        batching: bool,
        link: LinkProfile,
    ) -> Result<QueryClient> {
        self.open_session_with_workers(
            session,
            seed,
            batching,
            link,
            sectopk_protocols::intra_workers_from_env(),
        )
    }

    /// [`Self::open_session`] with an explicit intra-query worker count applied to both
    /// the session's S1 loops and its S2 engine.
    pub fn open_session_with_workers(
        &self,
        session: SessionId,
        seed: u64,
        batching: bool,
        link: LinkProfile,
        intra_workers: usize,
    ) -> Result<QueryClient> {
        let mut clouds = TwoClouds::connect_with_workers(
            &self.master,
            seed,
            batching,
            &self.s2,
            session,
            link,
            intra_workers,
        )?;
        clouds.set_metrics(&self.metrics, &session.0.to_string());
        Ok(QueryClient {
            session,
            seed,
            clouds,
            outsourced: self.outsourced.clone(),
            keys: self.master.clone(),
            rng: sectopk_core::resolution_rng(seed),
            outcomes: Vec::new(),
            failures: Vec::new(),
            submitted: 0,
            client_metrics: ClientMetrics::from_registry(&self.metrics),
        })
    }

    /// Open session `i` of a serving run configured by `config` (seed =
    /// `shard_seed(base_seed, i)`).
    pub fn open_configured(&self, i: u64, config: &ServeConfig) -> Result<QueryClient> {
        self.open_session_with_workers(
            SessionId(i),
            shard_seed(config.base_seed, i),
            config.batching,
            config.link,
            config.intra_workers,
        )
    }

    /// Open session `i` of a serving run over a real TCP connection to a
    /// [`TcpCloudServer`] at `addr`, with the same session id, seed and intra-query
    /// worker count [`Self::open_configured`] would use — and with `config`'s
    /// [`RetryPolicy`] and [`FaultPlan`] applied to the connection.  The TCP transport
    /// runs over an ideal link, so with `config.link` left ideal the session's reports
    /// are byte-identical to the in-process session of the same index.
    pub fn open_remote_session(
        &self,
        addr: &str,
        i: u64,
        config: &ServeConfig,
    ) -> Result<QueryClient> {
        let seed = shard_seed(config.base_seed, i);
        let options = TcpOptions::default()
            .with_session(SessionId(i))
            .with_retry(config.retry)
            .with_faults(config.faults);
        let mut clouds =
            TwoClouds::connect_tcp(&self.master, seed, config.batching, addr, options)?;
        clouds.set_intra_workers(config.intra_workers);
        clouds.set_metrics(&self.metrics, &i.to_string());
        Ok(QueryClient {
            session: SessionId(i),
            seed,
            clouds,
            outsourced: self.outsourced.clone(),
            keys: self.master.clone(),
            rng: sectopk_core::resolution_rng(seed),
            outcomes: Vec::new(),
            failures: Vec::new(),
            submitted: 0,
            client_metrics: ClientMetrics::from_registry(&self.metrics),
        })
    }

    /// The whole lifetime of one serving session: run its query stream (failures are
    /// recorded, not fatal) and report.  Every serving shape — [`QueryServer::serve`],
    /// [`QueryServer::serve_serial`] and [`QueryServer::serve_tcp`] — executes exactly
    /// this loop, which is what makes each of them a faithful determinism oracle for
    /// the others.
    fn run_client(
        mut client: QueryClient,
        queries: &[TopKQuery],
        config: &ServeConfig,
    ) -> SessionReport {
        let mut queries = queries.iter().peekable();
        while let Some(spec) = queries.next() {
            // A failed query is recorded in the client's failure list; the session (and
            // the rest of the serving run) keeps going.
            let _ = client.execute(&config.query_for(spec));
            if queries.peek().is_some() {
                // The session is idle between queries: use the gap to top up S1's nonce
                // pools, so the next query's encryptions pop precomputed nonces instead
                // of paying the exponentiations inline.  Pool streams are
                // position-deterministic, so this never changes protocol bytes.
                client.idle_refill();
            }
        }
        client.finish()
    }

    fn run_session(
        &self,
        i: usize,
        queries: &[TopKQuery],
        config: &ServeConfig,
    ) -> Result<SessionReport> {
        let client = self.open_configured(i as u64 + 1, config)?;
        Ok(Self::run_client(client, queries, config))
    }

    /// Serve `workload` with `config.sessions` concurrent sessions: queries are dealt
    /// round-robin ([`QueryWorkload::partition`]), each session runs its stream on its
    /// own thread against the shared S2 pool, and the per-session reports come back in
    /// session order.
    pub fn serve(&self, workload: &QueryWorkload, config: &ServeConfig) -> Result<ServeReport> {
        let partitions = workload.partition(config.sessions.max(1));
        let start = Instant::now();
        let mut reports: Vec<SessionReport> = Vec::with_capacity(partitions.len());
        std::thread::scope(|scope| -> Result<()> {
            let handles: Vec<_> = partitions
                .iter()
                .enumerate()
                .map(|(i, queries)| scope.spawn(move || self.run_session(i, queries, config)))
                .collect();
            for handle in handles {
                let report = handle
                    .join()
                    .map_err(|_| ProtocolError::transport("session thread panicked"))?;
                reports.push(report?);
            }
            Ok(())
        })?;
        Ok(ServeReport {
            sessions: reports,
            queries: workload.queries.len(),
            wall_seconds: start.elapsed().as_secs_f64(),
            metrics: self.metrics.snapshot(),
        })
    }

    /// The serial reference execution: the same sessions, seeds and query streams as
    /// [`QueryServer::serve`], but run one session after another.  Produces
    /// byte-identical per-session reports — the determinism oracle for the concurrency
    /// tests, and the 1-way baseline for the throughput bench.
    pub fn serve_serial(
        &self,
        workload: &QueryWorkload,
        config: &ServeConfig,
    ) -> Result<ServeReport> {
        let partitions = workload.partition(config.sessions.max(1));
        let start = Instant::now();
        let reports = partitions
            .iter()
            .enumerate()
            .map(|(i, queries)| self.run_session(i, queries, config))
            .collect::<Result<Vec<_>>>()?;
        Ok(ServeReport {
            sessions: reports,
            queries: workload.queries.len(),
            wall_seconds: start.elapsed().as_secs_f64(),
            metrics: self.metrics.snapshot(),
        })
    }

    /// [`QueryServer::serve`], but with every session crossing a real TCP socket: the
    /// server's S2 pool is exposed on an ephemeral loopback listener, each session runs
    /// as a [`Self::open_remote_session`] client, and `config`'s [`RetryPolicy`] and
    /// [`FaultPlan`] govern the connections.  With `config.link` left ideal the
    /// per-session reports are byte-identical to [`QueryServer::serve`] — and, with
    /// faults injected but retry enabled, byte-identical to the fault-free run (the
    /// chaos-soak invariant).
    pub fn serve_tcp(&self, workload: &QueryWorkload, config: &ServeConfig) -> Result<ServeReport> {
        let listener = self.listen("127.0.0.1:0")?;
        let addr = listener.local_addr().to_string();
        let partitions = workload.partition(config.sessions.max(1));
        let start = Instant::now();
        let mut reports: Vec<SessionReport> = Vec::with_capacity(partitions.len());
        std::thread::scope(|scope| -> Result<()> {
            let handles: Vec<_> = partitions
                .iter()
                .enumerate()
                .map(|(i, queries)| {
                    let addr = addr.as_str();
                    scope.spawn(move || {
                        let client = self.open_remote_session(addr, i as u64 + 1, config)?;
                        Ok(Self::run_client(client, queries, config))
                    })
                })
                .collect();
            for handle in handles {
                let report: Result<SessionReport> = handle
                    .join()
                    .map_err(|_| ProtocolError::transport("session thread panicked"))?;
                reports.push(report?);
            }
            Ok(())
        })?;
        drop(listener);
        Ok(ServeReport {
            sessions: reports,
            queries: workload.queries.len(),
            wall_seconds: start.elapsed().as_secs_f64(),
            metrics: self.metrics.snapshot(),
        })
    }
}

/// Extension trait putting the serving constructor on [`sectopk_core::DataOwner`]
/// itself, so the quickstart reads `owner.outsource(…)` → `owner.serve_relation(…)` →
/// `server.open_session(…)`.
pub trait ServeExt {
    /// Stand up a [`QueryServer`] around an outsourced relation with `s2_workers` S2
    /// worker threads.
    fn serve_relation(&self, outsourced: &Outsourced, s2_workers: usize) -> QueryServer;
}

impl ServeExt for sectopk_core::DataOwner {
    fn serve_relation(&self, outsourced: &Outsourced, s2_workers: usize) -> QueryServer {
        QueryServer::new(self.keys(), outsourced.clone(), s2_workers)
    }
}
