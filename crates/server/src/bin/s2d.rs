//! `sectopk-s2d` — the crypto cloud S2 as a standalone network daemon.
//!
//! Holds **no keys and no data** at startup: every accepted connection provisions its
//! own session engine over the handshake (the S2 key view travels from the client, as
//! the owner's setup hands S2 its decryption keys in Figure 1 of the paper), and all
//! sessions share one `MultiplexServer` worker pool.
//!
//! ```text
//! sectopk-s2d --listen 127.0.0.1:7171 --workers 4
//! ```
//!
//! The bound address is printed on stdout (`listening on ADDR`) so scripts can grep
//! the resolved port when binding `:0`.

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;

use sectopk_protocols::{MultiplexServer, TcpCloudServer, TcpServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: sectopk-s2d [--listen ADDR] [--workers N] [--max-sessions N]\n\
         \n\
         --listen ADDR        address to bind (default 127.0.0.1:7171; port 0 = ephemeral)\n\
         --workers N          S2 worker threads in the pool (default 4)\n\
         --max-sessions N     admission cap on concurrent sessions (default 1024)"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut listen = String::from("127.0.0.1:7171");
    let mut workers = 4usize;
    let mut max_sessions = 1024usize;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" if i + 1 < args.len() => {
                listen = args[i + 1].clone();
                i += 2;
            }
            "--workers" if i + 1 < args.len() => {
                let Ok(n) = args[i + 1].parse() else { return usage() };
                workers = n;
                i += 2;
            }
            "--max-sessions" if i + 1 < args.len() => {
                let Ok(n) = args[i + 1].parse() else { return usage() };
                max_sessions = n;
                i += 2;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let pool = Arc::new(MultiplexServer::new(workers));
    let server = match TcpCloudServer::serve_pool(&listen, pool, TcpServerConfig { max_sessions }) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("sectopk-s2d: binding {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("sectopk-s2d listening on {}", server.local_addr());
    println!("workers={workers} max-sessions={max_sessions}");
    let _ = std::io::stdout().flush();

    // Serve until killed; all work happens on the accept and bridge threads.
    loop {
        std::thread::park();
    }
}
