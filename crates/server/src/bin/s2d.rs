//! `sectopk-s2d` — the crypto cloud S2 as a standalone network daemon.
//!
//! Holds **no keys and no data** at startup: every accepted connection provisions its
//! own session engine over the handshake (the S2 key view travels from the client, as
//! the owner's setup hands S2 its decryption keys in Figure 1 of the paper), and all
//! sessions share one `MultiplexServer` worker pool.
//!
//! ```text
//! sectopk-s2d --listen 127.0.0.1:7171 --workers 4
//! ```
//!
//! The bound address is printed on stdout (`listening on ADDR`) so scripts can grep
//! the resolved port when binding `:0`.
//!
//! A session whose connection drops is *parked* for `--park-ttl` seconds so the client
//! can resume it transparently (see `sectopk_protocols::tcp`); `--park-ttl 0` reaps
//! dropped sessions immediately.  With `--drain-on-stdin`, the daemon stops accepting
//! connections when its stdin reaches end-of-file, lets in-flight sessions finish
//! (bounded by `--drain-grace`), and exits — the shape an orchestrator uses for
//! graceful rollouts.
//!
//! With `--metrics-period SECS`, the daemon enables the `sectopk-metrics` registry on
//! its worker pool and dumps a human-readable rendering of every counter and histogram
//! to stderr each period — request mix, pool sheds/replays, accepts/rejects/resumes,
//! worker busy time.  Metrics are off (zero-cost no-op handles) without the flag.

use std::io::{Read, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use sectopk_metrics::Registry;
use sectopk_protocols::{MultiplexServer, PoolLimits, TcpCloudServer, TcpServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: sectopk-s2d [--listen ADDR] [--workers N] [--max-sessions N]\n\
         \x20                  [--park-ttl SECS] [--drain-on-stdin] [--drain-grace SECS]\n\
         \x20                  [--metrics-period SECS]\n\
         \n\
         --listen ADDR        address to bind (default 127.0.0.1:7171; port 0 = ephemeral)\n\
         --workers N          S2 worker threads in the pool (default 4)\n\
         --max-sessions N     admission cap on concurrent sessions, active + parked (default 1024)\n\
         --park-ttl SECS      how long a dropped session stays resumable (default 30; 0 = reap immediately)\n\
         --drain-on-stdin     stop accepting, finish in-flight sessions and exit when stdin hits EOF\n\
         --drain-grace SECS   how long --drain-on-stdin waits for live sessions (default 5)\n\
         --metrics-period SECS  enable metrics and dump the registry to stderr every SECS seconds"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut listen = String::from("127.0.0.1:7171");
    let mut workers = 4usize;
    let mut max_sessions = 1024usize;
    let mut park_ttl = 30u64;
    let mut drain_on_stdin = false;
    let mut drain_grace = 5u64;
    let mut metrics_period = 0u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => {
                let Some(v) = args.next() else { return usage() };
                listen = v;
            }
            "--workers" => {
                let Some(Ok(n)) = args.next().map(|v| v.parse()) else { return usage() };
                workers = n;
            }
            "--max-sessions" => {
                let Some(Ok(n)) = args.next().map(|v| v.parse()) else { return usage() };
                max_sessions = n;
            }
            "--park-ttl" => {
                let Some(Ok(n)) = args.next().map(|v| v.parse()) else { return usage() };
                park_ttl = n;
            }
            "--drain-on-stdin" => drain_on_stdin = true,
            "--drain-grace" => {
                let Some(Ok(n)) = args.next().map(|v| v.parse()) else { return usage() };
                drain_grace = n;
            }
            "--metrics-period" => {
                let Some(Ok(n)) = args.next().map(|v| v.parse()) else { return usage() };
                metrics_period = n;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let config = TcpServerConfig::default()
        .with_max_sessions(max_sessions)
        .with_park_ttl(Duration::from_secs(park_ttl));
    let registry = if metrics_period > 0 { Registry::enabled() } else { Registry::disabled() };
    let pool = Arc::new(MultiplexServer::with_limits_and_metrics(
        workers,
        PoolLimits::default(),
        registry.clone(),
    ));
    if metrics_period > 0 {
        // Periodic observability dump: render every counter and histogram to stderr so
        // the daemon's stdout stays reserved for the scriptable `listening on` lines.
        let registry = registry.clone();
        let spawned = std::thread::Builder::new().name(String::from("sectopk-s2d-metrics")).spawn(
            move || loop {
                std::thread::sleep(Duration::from_secs(metrics_period));
                eprintln!("{}", registry.render());
            },
        );
        if let Err(e) = spawned {
            eprintln!("sectopk-s2d: cannot spawn metrics reporter: {e}");
            return ExitCode::FAILURE;
        }
    }
    let server = match TcpCloudServer::serve_pool(&listen, pool, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("sectopk-s2d: binding {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("sectopk-s2d listening on {}", server.local_addr());
    println!("workers={workers} max-sessions={max_sessions} park-ttl={park_ttl}s");
    let _ = std::io::stdout().flush();

    if drain_on_stdin {
        // Swallow stdin until the orchestrator closes it, then drain: new hellos are
        // answered with a typed retryable `Draining` reject, parked sessions are
        // reaped, and live sessions get `drain_grace` to finish before being severed.
        let mut sink = Vec::new();
        let _ = std::io::stdin().read_to_end(&mut sink);
        println!("sectopk-s2d draining (grace {drain_grace}s)");
        let _ = std::io::stdout().flush();
        server.drain(Duration::from_secs(drain_grace));
        return ExitCode::SUCCESS;
    }

    // Serve until killed; all work happens on the accept and bridge threads.
    loop {
        std::thread::park();
    }
}
