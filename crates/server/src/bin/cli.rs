//! `sectopk-cli` — the S1 / data-owner side of the two-binary deployment.
//!
//! Subcommands:
//!
//! * `outsource` — generate keys and a synthetic relation deterministically from a
//!   seed and encrypt it, reporting the `Enc(λ, R)` setup cost.  Pure local work; the
//!   crypto cloud never sees plaintext data.
//! * `query` — run a top-k query end to end against a remote `sectopk-s2d` process:
//!   re-derive keys and relation from the seed, outsource, open a
//!   [`sectopk_core::RemoteSession`] over TCP, execute, and print the resolved
//!   results plus channel metrics.
//! * `serve` — stand up the S2 listener in-process (same engine as `sectopk-s2d`),
//!   for single-binary deployments.
//!
//! ```text
//! sectopk-s2d --listen 127.0.0.1:7171 &
//! sectopk-cli query --server 127.0.0.1:7171 --seed 7 --rows 8 --k 2
//! ```

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::{DataOwner, Query, QueryVariant, Session, VariantChoice};
use sectopk_datasets::{generate, DatasetKind, DatasetSpec};
use sectopk_protocols::{MultiplexServer, TcpCloudServer, TcpServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: sectopk-cli <outsource|query|serve> [options]\n\
         \n\
         outsource  --seed N [--rows N] [--attributes N] [--modulus-bits N] [--ehl-keys N]\n\
         query      --server HOST:PORT --seed N [--rows N] [--attributes N] [--k N]\n\
         \x20          [--query-attrs i,j,…] [--variant full|dupelim|auto]\n\
         \x20          [--modulus-bits N] [--ehl-keys N]\n\
         serve      [--listen ADDR] [--workers N] [--max-sessions N]\n\
         \n\
         Keys and data re-derive deterministically from --seed, so a query run is\n\
         reproducible and the S2 daemon needs no out-of-band key distribution."
    );
    ExitCode::FAILURE
}

/// Everything the `outsource` and `query` subcommands share: the deterministic
/// owner-side world derived from one seed.
struct OwnerArgs {
    seed: u64,
    rows: usize,
    attributes: usize,
    modulus_bits: usize,
    ehl_keys: usize,
}

impl OwnerArgs {
    fn defaults() -> Self {
        OwnerArgs { seed: 7, rows: 8, attributes: 3, modulus_bits: 128, ehl_keys: 3 }
    }
}

fn parse_u64(args: &[String], i: usize) -> Option<u64> {
    args.get(i).and_then(|v| v.parse().ok())
}

fn parse_usize(args: &[String], i: usize) -> Option<usize> {
    args.get(i).and_then(|v| v.parse().ok())
}

fn cmd_outsource(args: &[String]) -> ExitCode {
    let mut owner_args = OwnerArgs::defaults();
    let mut i = 0;
    while let Some(arg) = args.get(i) {
        match arg.as_str() {
            "--seed" => match parse_u64(args, i + 1) {
                Some(v) => {
                    owner_args.seed = v;
                    i += 2;
                }
                None => return usage(),
            },
            "--rows" => match parse_usize(args, i + 1) {
                Some(v) => {
                    owner_args.rows = v;
                    i += 2;
                }
                None => return usage(),
            },
            "--attributes" => match parse_usize(args, i + 1) {
                Some(v) => {
                    owner_args.attributes = v;
                    i += 2;
                }
                None => return usage(),
            },
            "--modulus-bits" => match parse_usize(args, i + 1) {
                Some(v) => {
                    owner_args.modulus_bits = v;
                    i += 2;
                }
                None => return usage(),
            },
            "--ehl-keys" => match parse_usize(args, i + 1) {
                Some(v) => {
                    owner_args.ehl_keys = v;
                    i += 2;
                }
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let (_, _, stats) = match build_world(&owner_args) {
        Ok(world) => world,
        Err(e) => {
            eprintln!("sectopk-cli outsource: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "outsourced: objects={} attributes={} paillier_encryptions={} encrypted_bytes={}",
        stats.num_objects, stats.num_attributes, stats.paillier_encryptions, stats.encrypted_bytes
    );
    ExitCode::SUCCESS
}

type World = (DataOwner, sectopk_core::Outsourced, sectopk_storage::EncryptionStats);

/// Derive owner keys, generate the synthetic relation, and outsource it — all
/// deterministic in the seed, so the `query` subcommand can re-create the exact
/// world the `outsource` subcommand described.
fn build_world(args: &OwnerArgs) -> sectopk_core::Result<World> {
    let mut rng = StdRng::seed_from_u64(args.seed);
    let owner = DataOwner::new(args.modulus_bits, args.ehl_keys, &mut rng)?;
    let spec =
        DatasetSpec { kind: DatasetKind::Synthetic, rows: args.rows, attributes: args.attributes };
    let relation = generate(&spec, args.seed);
    let (outsourced, stats) = owner.outsource(&relation, &mut rng)?;
    Ok((owner, outsourced, stats))
}

#[allow(clippy::too_many_lines)]
fn cmd_query(args: &[String]) -> ExitCode {
    let mut owner_args = OwnerArgs::defaults();
    let mut server = String::new();
    let mut k = 2usize;
    let mut query_attrs: Option<Vec<usize>> = None;
    let mut variant = VariantChoice::Fixed(QueryVariant::Full);
    let mut i = 0;
    while let Some(arg) = args.get(i) {
        match arg.as_str() {
            "--server" => match args.get(i + 1) {
                Some(v) => {
                    server = v.clone();
                    i += 2;
                }
                None => return usage(),
            },
            "--seed" => match parse_u64(args, i + 1) {
                Some(v) => {
                    owner_args.seed = v;
                    i += 2;
                }
                None => return usage(),
            },
            "--rows" => match parse_usize(args, i + 1) {
                Some(v) => {
                    owner_args.rows = v;
                    i += 2;
                }
                None => return usage(),
            },
            "--attributes" => match parse_usize(args, i + 1) {
                Some(v) => {
                    owner_args.attributes = v;
                    i += 2;
                }
                None => return usage(),
            },
            "--modulus-bits" => match parse_usize(args, i + 1) {
                Some(v) => {
                    owner_args.modulus_bits = v;
                    i += 2;
                }
                None => return usage(),
            },
            "--ehl-keys" => match parse_usize(args, i + 1) {
                Some(v) => {
                    owner_args.ehl_keys = v;
                    i += 2;
                }
                None => return usage(),
            },
            "--k" => match parse_usize(args, i + 1) {
                Some(v) => {
                    k = v;
                    i += 2;
                }
                None => return usage(),
            },
            "--query-attrs" => match args.get(i + 1) {
                Some(list) => {
                    let parsed: Option<Vec<usize>> =
                        list.split(',').map(|v| v.trim().parse().ok()).collect();
                    let Some(parsed) = parsed else { return usage() };
                    query_attrs = Some(parsed);
                    i += 2;
                }
                None => return usage(),
            },
            "--variant" => match args.get(i + 1).map(String::as_str) {
                Some("full") => {
                    variant = VariantChoice::Fixed(QueryVariant::Full);
                    i += 2;
                }
                Some("dupelim") => {
                    variant = VariantChoice::Fixed(QueryVariant::DupElim);
                    i += 2;
                }
                Some("auto") => {
                    variant = VariantChoice::Auto;
                    i += 2;
                }
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    if server.is_empty() {
        eprintln!("sectopk-cli query: --server HOST:PORT is required");
        return usage();
    }

    let run = || -> sectopk_core::Result<()> {
        let (owner, outsourced, _) = build_world(&owner_args)?;
        eprintln!("connecting to S2 at {server} …");
        let mut session = owner.connect_remote(&outsourced, &server, owner_args.seed)?;
        let attrs =
            query_attrs.unwrap_or_else(|| (0..outsourced.num_attributes().min(3)).collect());
        let query = Query::top_k(k).attribute_indices(attrs.clone()).variant(variant).build()?;
        let plan = session.plan(&query);
        eprintln!("executing top-{k} over attributes {attrs:?} as {} …", plan.variant_name());
        let resolved = session.execute(&query)?;
        for (rank, result) in resolved.results.iter().enumerate() {
            match result.object {
                Some(id) => println!(
                    "#{rank}: object {} (score bounds [{}, {}])",
                    id.0, result.worst, result.best
                ),
                None => println!("#{rank}: neutralised placeholder"),
            }
        }
        let metrics = session.metrics();
        println!(
            "plan={} rounds={} bytes={} s2_ledger_events={}",
            resolved.plan().map_or("?", |p| p.variant_name()),
            metrics.rounds,
            metrics.bytes,
            session.s2_ledger().len()
        );
        let _ = std::io::stdout().flush();
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sectopk-cli query: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut listen = String::from("127.0.0.1:7171");
    let mut workers = 4usize;
    let mut max_sessions = 1024usize;
    let mut i = 0;
    while let Some(arg) = args.get(i) {
        match arg.as_str() {
            "--listen" => match args.get(i + 1) {
                Some(v) => {
                    listen = v.clone();
                    i += 2;
                }
                None => return usage(),
            },
            "--workers" => match parse_usize(args, i + 1) {
                Some(v) => {
                    workers = v;
                    i += 2;
                }
                None => return usage(),
            },
            "--max-sessions" => match parse_usize(args, i + 1) {
                Some(v) => {
                    max_sessions = v;
                    i += 2;
                }
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let pool = Arc::new(MultiplexServer::new(workers));
    let server = match TcpCloudServer::serve_pool(
        &listen,
        pool,
        TcpServerConfig::default().with_max_sessions(max_sessions),
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("sectopk-cli serve: binding {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("sectopk-cli serving S2 on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    loop {
        std::thread::park();
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else { return usage() };
    match command.as_str() {
        "outsource" => cmd_outsource(rest),
        "query" => cmd_query(rest),
        "serve" => cmd_serve(rest),
        "--help" | "-h" => {
            usage();
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
