//! The EHL / EHL+ encoder: the data-owner-side procedure that hashes an object under the
//! `s` secret PRF keys and encrypts the result (Fig. 2 of the paper).

use num_bigint::BigUint;
use rand::{CryptoRng, RngCore};

use sectopk_crypto::paillier::PaillierPublicKey;
use sectopk_crypto::prf::{Prf, PrfKey};
use sectopk_crypto::Result;

use crate::ehl_bloom::EhlBloom;
use crate::ehl_plus::EhlPlus;

/// Encodes objects into EHL / EHL+ structures under a fixed set of `s` PRF keys.
///
/// The encoder is reusable: the PRF instances are keyed once, so encoding a full relation
/// of `n` objects costs `s` HMAC evaluations plus `s` Paillier encryptions per object
/// (the dominant cost measured in Fig. 7a / Fig. 8a).
#[derive(Clone, Debug)]
pub struct EhlEncoder {
    prfs: Vec<Prf>,
}

impl EhlEncoder {
    /// Build an encoder from the `s` secret keys `κ_1, …, κ_s`.
    pub fn new(keys: &[PrfKey]) -> Self {
        assert!(!keys.is_empty(), "at least one PRF key is required");
        EhlEncoder { prfs: keys.iter().map(Prf::new).collect() }
    }

    /// Number of PRF keys `s`.
    pub fn key_count(&self) -> usize {
        self.prfs.len()
    }

    /// Encode an object into the compact EHL+ structure:
    /// `EHL+[i] = Enc(HMAC(k_i, o) mod N)` for `1 ≤ i ≤ s`.
    pub fn encode<R: RngCore + CryptoRng>(
        &self,
        object: &[u8],
        pk: &PaillierPublicKey,
        rng: &mut R,
    ) -> Result<EhlPlus> {
        let blocks = self
            .prfs
            .iter()
            .map(|prf| {
                let image = prf.eval_mod(object, pk.n());
                pk.encrypt(&image, rng)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(EhlPlus::from_blocks(blocks))
    }

    /// The plaintext PRF images of an object (used by the storage layer when it only
    /// needs deterministic per-object values, and by tests).
    pub fn plaintext_images(&self, object: &[u8], n: &BigUint) -> Vec<BigUint> {
        self.prfs.iter().map(|prf| prf.eval_mod(object, n)).collect()
    }

    /// The bucket positions an object occupies in the Bloom-style EHL with `h` buckets.
    pub fn bloom_positions(&self, object: &[u8], h: usize) -> Vec<usize> {
        self.prfs.iter().map(|prf| prf.eval_mod_usize(object, h)).collect()
    }

    /// Encode an object into the original Bloom-filter-style EHL with `h` buckets:
    /// set `EHL[HMAC(κ_i, o) mod h] = 1`, then encrypt every bit.
    pub fn encode_bloom<R: RngCore + CryptoRng>(
        &self,
        object: &[u8],
        h: usize,
        pk: &PaillierPublicKey,
        rng: &mut R,
    ) -> Result<EhlBloom> {
        assert!(h > 0, "bucket count must be positive");
        let mut bits = vec![0u64; h];
        for pos in self.bloom_positions(object, h) {
            bits[pos] = 1;
        }
        let encrypted =
            bits.into_iter().map(|b| pk.encrypt_u64(b, rng)).collect::<Result<Vec<_>>>()?;
        Ok(EhlBloom::from_bits(encrypted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::paillier::generate_keypair;

    fn encoder(s: usize) -> EhlEncoder {
        let keys: Vec<PrfKey> = (0..s as u8).map(|i| PrfKey([i + 1; 32])).collect();
        EhlEncoder::new(&keys)
    }

    #[test]
    fn plaintext_images_are_deterministic_and_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let (pk, _sk) = generate_keypair(128, &mut rng).unwrap();
        let enc = encoder(5);
        let a = enc.plaintext_images(b"obj-1", pk.n());
        let a2 = enc.plaintext_images(b"obj-1", pk.n());
        let b = enc.plaintext_images(b"obj-2", pk.n());
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn bloom_positions_are_within_range() {
        let enc = encoder(4);
        for h in [1usize, 2, 23, 100] {
            for i in 0..20 {
                let positions = enc.bloom_positions(format!("o{i}").as_bytes(), h);
                assert_eq!(positions.len(), 4);
                assert!(positions.iter().all(|&p| p < h));
            }
        }
    }

    #[test]
    fn encode_produces_s_blocks() {
        let mut rng = StdRng::seed_from_u64(9);
        let (pk, sk) = generate_keypair(128, &mut rng).unwrap();
        let enc = encoder(3);
        let e = enc.encode(b"object", &pk, &mut rng).unwrap();
        assert_eq!(e.len(), 3);
        // Blocks decrypt to the PRF images.
        let images = enc.plaintext_images(b"object", pk.n());
        for (block, image) in e.blocks().iter().zip(images.iter()) {
            assert_eq!(&sk.decrypt(block).unwrap(), image);
        }
    }

    #[test]
    fn encode_bloom_sets_expected_bits() {
        let mut rng = StdRng::seed_from_u64(11);
        let (pk, sk) = generate_keypair(128, &mut rng).unwrap();
        let enc = encoder(3);
        let h = 23;
        let e = enc.encode_bloom(b"object", h, &pk, &mut rng).unwrap();
        assert_eq!(e.len(), h);
        let positions = enc.bloom_positions(b"object", h);
        for (i, bit) in e.bits().iter().enumerate() {
            let value = sk.decrypt_u64(bit).unwrap();
            let expected = if positions.contains(&i) { 1 } else { 0 };
            assert_eq!(value, expected, "bucket {i}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one PRF key")]
    fn empty_key_set_is_rejected() {
        let _ = EhlEncoder::new(&[]);
    }
}
