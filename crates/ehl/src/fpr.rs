//! False-positive-rate analysis for EHL and EHL+ (§5 of the paper).
//!
//! * Bloom-style EHL with `H` buckets and `s` hash functions over `n` objects:
//!   `FPR ≈ (1 − e^{−s·n/H})^s`, minimised at `s = (H/n)·ln 2`, where it is ≈ `0.62^{H/n}`.
//! * EHL+ with `s` PRF images modulo `N`: a pair collides with probability at most
//!   `1/Nˢ`, so a union bound over all pairs gives `FPR ≤ n²/Nˢ` — negligible for the
//!   moduli the scheme uses (the paper quotes `N ≈ 2^256`, `s = 4..5`).

/// Estimated Bloom-filter false positive rate for `h` buckets, `s` hash functions and `n`
/// inserted elements (here every object occupies its own filter, so the per-pair collision
/// probability is governed by `s` positions in `h` buckets).
pub fn bloom_fpr(h: usize, s: usize, _n: usize) -> f64 {
    assert!(h > 0 && s > 0);
    // Probability a specific bucket is unset in one object's pattern: (1 - 1/h)^s.
    // Two objects collide iff their bit patterns coincide; the classical approximation
    // used by the paper treats this as (1 - e^{-s/h*...}); we follow the paper's formula
    // with n interpreted as the per-filter insertion count (1 object per filter, s bits).
    let exponent = -(s as f64) / (h as f64);
    (1.0 - exponent.exp()).powi(s as i32)
}

/// The hash-function count that minimises the Bloom FPR for `h` buckets holding the bits
/// of one object's `s`-position pattern relative to `n` objects sharing the parameters
/// (`s* = (H/n)·ln 2` in the paper's notation, with `n = 1` per filter this is `H·ln 2`).
pub fn optimal_hash_count(h: usize, n: usize) -> usize {
    assert!(h > 0 && n > 0);
    (((h as f64) / (n as f64)) * std::f64::consts::LN_2).round().max(1.0) as usize
}

/// Upper bound on the EHL+ false positive rate for `n` objects, `s` PRF images and a
/// modulus of `modulus_bits` bits: `n² / N^s ≤ n² / 2^{modulus_bits·s}` (§5).
///
/// Returned as a base-2 logarithm to avoid underflow (the true value is astronomically
/// small); i.e. `FPR ≤ 2^{returned value}`.
pub fn ehl_plus_fpr_log2(n: usize, s: usize, modulus_bits: usize) -> f64 {
    assert!(n > 0 && s > 0 && modulus_bits > 0);
    2.0 * (n as f64).log2() - (modulus_bits as f64) * (s as f64)
}

/// True when the EHL+ parameters give a false positive rate below `2^{-target_bits}`
/// (e.g. `target_bits = 40` for the "negligible even for millions of records" claim).
pub fn ehl_plus_is_negligible(n: usize, s: usize, modulus_bits: usize, target_bits: u32) -> bool {
    ehl_plus_fpr_log2(n, s, modulus_bits) <= -(target_bits as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bloom_fpr_decreases_with_more_buckets() {
        let few = bloom_fpr(8, 5, 1);
        let many = bloom_fpr(64, 5, 1);
        assert!(many < few);
        assert!(few > 0.0 && few < 1.0);
    }

    #[test]
    fn optimal_hash_count_matches_ln2_rule() {
        assert_eq!(optimal_hash_count(23, 1), 16); // 23 * 0.693 ≈ 15.9
        assert_eq!(optimal_hash_count(10, 1), 7);
        assert!(optimal_hash_count(1, 10) >= 1);
    }

    #[test]
    fn paper_parameters_are_negligible() {
        // The paper: N a 256-bit number, s = 4 or 5, millions of records.
        assert!(ehl_plus_is_negligible(1_000_000, 4, 256, 40));
        assert!(ehl_plus_is_negligible(1_000_000, 5, 256, 80));
        // Degenerate parameters are not negligible.
        assert!(!ehl_plus_is_negligible(1_000_000, 1, 32, 40));
    }

    #[test]
    fn fpr_log2_formula() {
        // n = 2^20, s = 5, 256-bit N: log2(FPR) = 40 - 1280 = -1240.
        let v = ehl_plus_fpr_log2(1 << 20, 5, 256);
        assert!((v - (40.0 - 1280.0)).abs() < 1e-9);
    }

    #[test]
    fn larger_s_reduces_ehl_plus_fpr() {
        assert!(ehl_plus_fpr_log2(1000, 5, 128) < ehl_plus_fpr_log2(1000, 2, 128));
    }
}
