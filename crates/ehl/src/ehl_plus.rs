//! The space-efficient encrypted hash list **EHL+** (§5 of the paper).
//!
//! An `EHL+(o)` stores `s` Paillier encryptions `Enc(HMAC(k_i, o) mod N)`, one per PRF
//! key.  Its only job is to let the clouds *homomorphically* test equality of the
//! underlying objects: the randomized operation `⊖` produces an encryption of `0` when
//! the objects are equal and of a value uniformly distributed in `Z_N` (w.h.p.) when they
//! are not (Lemma 5.2).  The false positive rate is at most `n²/Nˢ`, negligible for the
//! key sizes the paper considers.

use num_bigint::BigUint;
use rand::{CryptoRng, RngCore};
use serde::{Deserialize, Serialize};

use sectopk_crypto::bigint::random_invertible;
use sectopk_crypto::paillier::{Ciphertext, PaillierPublicKey};

/// An EHL+ encoding of one object: `s` Paillier ciphertexts of the object's PRF images.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct EhlPlus {
    blocks: Vec<Ciphertext>,
}

impl EhlPlus {
    /// Build an EHL+ from its constituent ciphertext blocks.
    pub fn from_blocks(blocks: Vec<Ciphertext>) -> Self {
        assert!(!blocks.is_empty(), "EHL+ needs at least one block");
        EhlPlus { blocks }
    }

    /// Number of blocks (`s`, the number of PRF keys).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if there are no blocks (never the case for a well-formed EHL+).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The underlying ciphertext blocks.
    pub fn blocks(&self) -> &[Ciphertext] {
        &self.blocks
    }

    /// Serialized size in bytes — what travels over the inter-cloud channel.
    pub fn byte_len(&self) -> usize {
        self.blocks.iter().map(Ciphertext::byte_len).sum()
    }

    /// The randomized equality operation `⊖` (Equation 1, adapted to EHL+):
    ///
    /// ```text
    /// EHL(x) ⊖ EHL(y) = Π_i ( EHL(x)[i] · EHL(y)[i]^{-1} )^{r_i}
    /// ```
    ///
    /// Returns `Enc(0)` when `x = y` and an encryption of a (w.h.p. non-zero) random
    /// group element otherwise.  The caller (S1) sends the result to S2, which holds the
    /// secret key and reports only the zero / non-zero bit.
    pub fn eq_test<R: RngCore + CryptoRng>(
        &self,
        other: &EhlPlus,
        pk: &PaillierPublicKey,
        rng: &mut R,
    ) -> Ciphertext {
        assert_eq!(
            self.len(),
            other.len(),
            "EHL+ structures under comparison must use the same number of PRF keys"
        );
        let rs: Vec<BigUint> = (0..self.len()).map(|_| random_invertible(rng, pk.n())).collect();
        self.eq_test_with_randomness(other, pk, &rs)
    }

    /// [`Self::eq_test`] with the per-block masking randomness `r_i` drawn by the
    /// caller.  Splitting the draw from the arithmetic makes the expensive part *pure*,
    /// so batched callers can pre-draw every `r_i` in serial order (keeping the RNG
    /// stream position-deterministic) and evaluate the `⊖`s on worker threads; the
    /// result is byte-identical to [`Self::eq_test`] with the same randomness.
    pub fn eq_test_with_randomness(
        &self,
        other: &EhlPlus,
        pk: &PaillierPublicKey,
        rs: &[BigUint],
    ) -> Ciphertext {
        assert_eq!(
            self.len(),
            other.len(),
            "EHL+ structures under comparison must use the same number of PRF keys"
        );
        assert_eq!(rs.len(), self.len(), "one masking scalar per block required");
        let mut acc = pk.one_ciphertext();
        for ((a, b), r) in self.blocks.iter().zip(other.blocks.iter()).zip(rs.iter()) {
            let diff = pk.sub(a, b);
            let masked = pk.mul_plain(&diff, r);
            acc = pk.add(&acc, &masked);
        }
        acc
    }

    /// The blockwise operation `⊙`: homomorphically add the blinding vector `α ∈ Z_Nˢ`
    /// to the encoded PRF images (`c_i ← EHL[i] · Enc(α_i)`).  Used by SecDedup /
    /// SecFilter to blind object encodings before shipping them to the other cloud.
    pub fn blind(&self, alphas: &[BigUint], pk: &PaillierPublicKey) -> EhlPlus {
        assert_eq!(alphas.len(), self.len(), "blinding vector must have one entry per block");
        let blocks =
            self.blocks.iter().zip(alphas.iter()).map(|(c, a)| pk.add_plain(c, a)).collect();
        EhlPlus { blocks }
    }

    /// Remove a blinding previously applied with [`Self::blind`] (`c_i ← c_i · Enc(−α_i)`).
    pub fn unblind(&self, alphas: &[BigUint], pk: &PaillierPublicKey) -> EhlPlus {
        assert_eq!(alphas.len(), self.len(), "blinding vector must have one entry per block");
        let blocks = self
            .blocks
            .iter()
            .zip(alphas.iter())
            .map(|(c, a)| {
                let neg = pk.n() - (a % pk.n());
                pk.add_plain(c, &(neg % pk.n()))
            })
            .collect();
        EhlPlus { blocks }
    }

    /// Blockwise multiplication with a vector of ciphertexts (the paper's
    /// `Enc(x) ⊙ EHL(y)` with both operands encrypted).
    pub fn mul_blocks(&self, others: &[Ciphertext], pk: &PaillierPublicKey) -> EhlPlus {
        assert_eq!(others.len(), self.len(), "operand must have one ciphertext per block");
        let blocks = self.blocks.iter().zip(others.iter()).map(|(c, o)| pk.add(c, o)).collect();
        EhlPlus { blocks }
    }

    /// Re-randomize every block (fresh ciphertexts, same plaintexts).  Applied whenever a
    /// cloud returns items so that the receiving cloud cannot link them to its own inputs.
    pub fn rerandomize<R: RngCore + CryptoRng>(
        &self,
        pk: &PaillierPublicKey,
        rng: &mut R,
    ) -> EhlPlus {
        let blocks = self.blocks.iter().map(|c| pk.rerandomize(c, rng)).collect();
        EhlPlus { blocks }
    }

    /// [`Self::rerandomize`] drawing precomputed nonces from a
    /// [`RandomnessPool`](sectopk_crypto::RandomnessPool) — one multiplication per
    /// block instead of one exponentiation.
    pub fn rerandomize_pooled(&self, pool: &mut sectopk_crypto::RandomnessPool) -> EhlPlus {
        let blocks = self.blocks.iter().map(|c| pool.rerandomize(c)).collect();
        EhlPlus { blocks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::EhlEncoder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::paillier::generate_keypair;
    use sectopk_crypto::prf::PrfKey;

    fn setup(
    ) -> (PaillierPublicKey, sectopk_crypto::paillier::PaillierSecretKey, EhlEncoder, StdRng) {
        let mut rng = StdRng::seed_from_u64(4242);
        let (pk, sk) = generate_keypair(128, &mut rng).unwrap();
        let keys: Vec<PrfKey> = (0..4u8).map(|i| PrfKey([i + 1; 32])).collect();
        let encoder = EhlEncoder::new(&keys);
        (pk, sk, encoder, rng)
    }

    #[test]
    fn equality_test_is_zero_for_same_object() {
        let (pk, sk, encoder, mut rng) = setup();
        let a = encoder.encode(b"object-17", &pk, &mut rng).unwrap();
        let b = encoder.encode(b"object-17", &pk, &mut rng).unwrap();
        assert_ne!(a, b, "two encodings of the same object are different ciphertexts");
        let result = a.eq_test(&b, &pk, &mut rng);
        assert!(sk.is_zero(&result).unwrap());
    }

    #[test]
    fn equality_test_is_nonzero_for_different_objects() {
        let (pk, sk, encoder, mut rng) = setup();
        let a = encoder.encode(b"object-17", &pk, &mut rng).unwrap();
        for other in ["object-18", "object-170", "x", ""] {
            let b = encoder.encode(other.as_bytes(), &pk, &mut rng).unwrap();
            let result = a.eq_test(&b, &pk, &mut rng);
            assert!(!sk.is_zero(&result).unwrap(), "{other} must not collide");
        }
    }

    #[test]
    fn equality_test_is_randomized() {
        let (pk, _sk, encoder, mut rng) = setup();
        let a = encoder.encode(b"o", &pk, &mut rng).unwrap();
        let b = encoder.encode(b"p", &pk, &mut rng).unwrap();
        let r1 = a.eq_test(&b, &pk, &mut rng);
        let r2 = a.eq_test(&b, &pk, &mut rng);
        assert_ne!(r1, r2, "⊖ must be a randomized operation");
    }

    #[test]
    fn blind_then_unblind_restores_equality() {
        let (pk, sk, encoder, mut rng) = setup();
        let a = encoder.encode(b"object-9", &pk, &mut rng).unwrap();
        let b = encoder.encode(b"object-9", &pk, &mut rng).unwrap();
        let alphas: Vec<BigUint> =
            (0..a.len()).map(|_| sectopk_crypto::bigint::random_below(&mut rng, pk.n())).collect();
        let blinded = a.blind(&alphas, &pk);
        // Blinded encoding no longer matches.
        let r = blinded.eq_test(&b, &pk, &mut rng);
        assert!(!sk.is_zero(&r).unwrap());
        // Unblinding restores it.
        let restored = blinded.unblind(&alphas, &pk);
        let r2 = restored.eq_test(&b, &pk, &mut rng);
        assert!(sk.is_zero(&r2).unwrap());
    }

    #[test]
    fn rerandomize_preserves_equality_semantics() {
        let (pk, sk, encoder, mut rng) = setup();
        let a = encoder.encode(b"object-1", &pk, &mut rng).unwrap();
        let a2 = a.rerandomize(&pk, &mut rng);
        assert_ne!(a, a2);
        let b = encoder.encode(b"object-1", &pk, &mut rng).unwrap();
        assert!(sk.is_zero(&a2.eq_test(&b, &pk, &mut rng)).unwrap());
    }

    #[test]
    fn byte_len_is_positive_and_additive() {
        let (pk, _sk, encoder, mut rng) = setup();
        let a = encoder.encode(b"object-1", &pk, &mut rng).unwrap();
        assert!(a.byte_len() > 0);
        assert!(a.byte_len() <= a.len() * (pk.n_squared().bits() as usize).div_ceil(8));
    }

    #[test]
    #[should_panic(expected = "same number of PRF keys")]
    fn eq_test_requires_matching_lengths() {
        let (pk, _sk, encoder, mut rng) = setup();
        let a = encoder.encode(b"x", &pk, &mut rng).unwrap();
        let short = EhlPlus::from_blocks(a.blocks()[..2].to_vec());
        let _ = a.eq_test(&short, &pk, &mut rng);
    }
}
