//! # sectopk-ehl
//!
//! The **Encrypted Hash List** data structures from §5 of *"Top-k Query Processing on
//! Encrypted Databases with Strong Security Guarantees"*: the Bloom-filter-style
//! [`EhlBloom`] and the compact [`EhlPlus`] used everywhere else in the system.
//!
//! An encrypted hash list encodes one object so that the cloud can *homomorphically*
//! test whether two encodings hide the same object (the randomized `⊖` operation), while
//! the encodings themselves are semantically-secure ciphertexts and therefore reveal
//! nothing about the objects (Lemma 5.1).
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use sectopk_crypto::paillier::generate_keypair;
//! use sectopk_crypto::prf::PrfKey;
//! use sectopk_ehl::EhlEncoder;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let (pk, sk) = generate_keypair(128, &mut rng).unwrap();
//! let keys: Vec<PrfKey> = (0..4u8).map(|i| PrfKey([i; 32])).collect();
//! let encoder = EhlEncoder::new(&keys);
//!
//! let alice_a = encoder.encode(b"alice", &pk, &mut rng).unwrap();
//! let alice_b = encoder.encode(b"alice", &pk, &mut rng).unwrap();
//! let bob = encoder.encode(b"bob", &pk, &mut rng).unwrap();
//!
//! // Same object → the ⊖ test decrypts to zero; different objects → non-zero.
//! assert!(sk.is_zero(&alice_a.eq_test(&alice_b, &pk, &mut rng)).unwrap());
//! assert!(!sk.is_zero(&alice_a.eq_test(&bob, &pk, &mut rng)).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ehl_bloom;
pub mod ehl_plus;
pub mod encoder;
pub mod fpr;

pub use ehl_bloom::{EhlBloom, DEFAULT_BUCKETS};
pub use ehl_plus::EhlPlus;
pub use encoder::EhlEncoder;
