//! The original Bloom-filter-style encrypted hash list **EHL** (§5 of the paper).
//!
//! `EHL(o)` is a length-`H` list of encrypted bits: the object is hashed to `s` bucket
//! positions (`HMAC(κ_i, o) mod H`), those buckets hold `Enc(1)` and every other bucket
//! holds `Enc(0)`.  The `⊖` equality test is the same randomized subtract-and-mask
//! product as for EHL+, but over all `H` buckets, so it costs `O(H)` homomorphic
//! operations and `O(H)` ciphertexts of storage per object.  The paper keeps this
//! structure mainly to motivate EHL+ (Fig. 7 compares the two); we implement both so the
//! comparison can be reproduced.

use rand::{CryptoRng, RngCore};
use serde::{Deserialize, Serialize};

use sectopk_crypto::bigint::random_invertible;
use sectopk_crypto::paillier::{Ciphertext, PaillierPublicKey};

/// Default bucket count used in the paper's experiments (`H = 23`, §11.1).
pub const DEFAULT_BUCKETS: usize = 23;

/// A Bloom-filter-style encrypted hash list: `H` encrypted bits.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct EhlBloom {
    bits: Vec<Ciphertext>,
}

impl EhlBloom {
    /// Build from the encrypted bit vector.
    pub fn from_bits(bits: Vec<Ciphertext>) -> Self {
        assert!(!bits.is_empty(), "EHL needs at least one bucket");
        EhlBloom { bits }
    }

    /// Number of buckets `H`.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True if there are no buckets (never the case for a well-formed EHL).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The encrypted bit vector.
    pub fn bits(&self) -> &[Ciphertext] {
        &self.bits
    }

    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bits.iter().map(Ciphertext::byte_len).sum()
    }

    /// The randomized equality operation `⊖` over all `H` buckets (Equation 1):
    /// `Enc(Σ_i r_i (x_i − y_i))`, which is `Enc(0)` iff the two bit vectors coincide
    /// (up to the Bloom-filter false-positive probability analysed in §5).
    pub fn eq_test<R: RngCore + CryptoRng>(
        &self,
        other: &EhlBloom,
        pk: &PaillierPublicKey,
        rng: &mut R,
    ) -> Ciphertext {
        assert_eq!(self.len(), other.len(), "EHL structures must use the same bucket count");
        let mut acc = pk.one_ciphertext();
        for (a, b) in self.bits.iter().zip(other.bits.iter()) {
            let diff = pk.sub(a, b);
            let r = random_invertible(rng, pk.n());
            acc = pk.add(&acc, &pk.mul_plain(&diff, &r));
        }
        acc
    }

    /// Re-randomize every bucket.
    pub fn rerandomize<R: RngCore + CryptoRng>(
        &self,
        pk: &PaillierPublicKey,
        rng: &mut R,
    ) -> EhlBloom {
        EhlBloom { bits: self.bits.iter().map(|c| pk.rerandomize(c, rng)).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::EhlEncoder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::paillier::generate_keypair;
    use sectopk_crypto::prf::PrfKey;

    fn setup(
    ) -> (PaillierPublicKey, sectopk_crypto::paillier::PaillierSecretKey, EhlEncoder, StdRng) {
        let mut rng = StdRng::seed_from_u64(1010);
        let (pk, sk) = generate_keypair(128, &mut rng).unwrap();
        let keys: Vec<PrfKey> = (0..3u8).map(|i| PrfKey([i + 10; 32])).collect();
        (pk, sk, EhlEncoder::new(&keys), rng)
    }

    #[test]
    fn equal_objects_test_zero() {
        let (pk, sk, encoder, mut rng) = setup();
        let a = encoder.encode_bloom(b"patient-42", DEFAULT_BUCKETS, &pk, &mut rng).unwrap();
        let b = encoder.encode_bloom(b"patient-42", DEFAULT_BUCKETS, &pk, &mut rng).unwrap();
        assert!(sk.is_zero(&a.eq_test(&b, &pk, &mut rng)).unwrap());
    }

    #[test]
    fn different_objects_test_nonzero() {
        let (pk, sk, encoder, mut rng) = setup();
        let a = encoder.encode_bloom(b"patient-42", DEFAULT_BUCKETS, &pk, &mut rng).unwrap();
        let b = encoder.encode_bloom(b"patient-43", DEFAULT_BUCKETS, &pk, &mut rng).unwrap();
        assert!(!sk.is_zero(&a.eq_test(&b, &pk, &mut rng)).unwrap());
    }

    #[test]
    fn bloom_structure_is_larger_than_plus() {
        let (pk, _sk, encoder, mut rng) = setup();
        let bloom = encoder.encode_bloom(b"x", DEFAULT_BUCKETS, &pk, &mut rng).unwrap();
        let plus = encoder.encode(b"x", &pk, &mut rng).unwrap();
        assert!(bloom.len() > plus.len());
        assert!(bloom.byte_len() > plus.byte_len());
    }

    #[test]
    fn tiny_bucket_count_can_collide() {
        // With H = 2 buckets and 3 hash functions, distinct objects frequently map to the
        // same bit pattern — the Bloom-filter false positive the paper's FPR analysis
        // covers.  We only check that *some* pair among a small set collides, which is
        // overwhelmingly likely, and that eq_test reports Enc(0) exactly when the
        // underlying patterns coincide.
        let (pk, sk, encoder, mut rng) = setup();
        let objects: Vec<String> = (0..12).map(|i| format!("o{i}")).collect();
        let encodings: Vec<EhlBloom> = objects
            .iter()
            .map(|o| encoder.encode_bloom(o.as_bytes(), 2, &pk, &mut rng).unwrap())
            .collect();
        let patterns: Vec<Vec<usize>> =
            objects.iter().map(|o| encoder.bloom_positions(o.as_bytes(), 2)).collect();

        let mut found_collision = false;
        for i in 0..objects.len() {
            for j in (i + 1)..objects.len() {
                let same_pattern = {
                    let mut a = vec![false; 2];
                    let mut b = vec![false; 2];
                    for &p in &patterns[i] {
                        a[p] = true;
                    }
                    for &p in &patterns[j] {
                        b[p] = true;
                    }
                    a == b
                };
                let zero = sk.is_zero(&encodings[i].eq_test(&encodings[j], &pk, &mut rng)).unwrap();
                assert_eq!(zero, same_pattern, "pair ({i},{j})");
                found_collision |= same_pattern;
            }
        }
        assert!(found_collision, "with H=2 at least one pair should collide");
    }
}
