//! Fast standalone smoke test: EHL encode + equality test at tiny parameters.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sectopk_crypto::paillier::generate_keypair;
use sectopk_crypto::prf::PrfKey;
use sectopk_ehl::EhlEncoder;

#[test]
fn ehl_encode_and_equality_test() {
    let mut rng = StdRng::seed_from_u64(0x3441);
    let (pk, sk) = generate_keypair(128, &mut rng).expect("keygen");
    let keys: Vec<PrfKey> = (0..3u8).map(|i| PrfKey([i + 1; 32])).collect();
    let encoder = EhlEncoder::new(&keys);

    let alpha = encoder.encode(b"object-a", &pk, &mut rng).expect("encode a");
    let alpha2 = encoder.encode(b"object-a", &pk, &mut rng).expect("encode a again");
    let beta = encoder.encode(b"object-b", &pk, &mut rng).expect("encode b");

    // Same object -> the homomorphic equality test decrypts to zero; different -> nonzero.
    assert!(sk.is_zero(&alpha.eq_test(&alpha2, &pk, &mut rng)).expect("eq same"));
    assert!(!sk.is_zero(&alpha.eq_test(&beta, &pk, &mut rng)).expect("eq diff"));
}
