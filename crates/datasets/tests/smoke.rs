//! Fast standalone smoke test: tiny dataset generation plus the Fig. 3 fixture.

use sectopk_datasets::{fig3_relation, generate, DatasetKind};

#[test]
fn tiny_generation_and_fig3_shape() {
    let spec = DatasetKind::Synthetic.spec().with_rows(8);
    let relation = generate(&spec, 99);
    assert_eq!(relation.len(), 8);
    assert_eq!(relation.num_attributes(), spec.attributes);
    // Deterministic for the same seed.
    assert_eq!(generate(&spec, 99), relation);

    // The Fig. 3 worked example: 5 objects (X1..X5) ranked on 3 attributes.
    let fig3 = fig3_relation();
    assert_eq!(fig3.len(), 5);
    assert_eq!(fig3.num_attributes(), 3);
}
