//! Deterministic generators for the four evaluation datasets of §11.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sectopk_storage::{ObjectId, Relation, Row, Score};

/// The four datasets of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// `insurance`: 5 822 customers × 13 attributes (COIL 2000 benchmark shape).
    Insurance,
    /// `diabetes`: 101 767 patient records × 10 attributes.
    Diabetes,
    /// `PAMAP`: 376 416 physical-activity-monitoring records × 15 attributes.
    Pamap,
    /// `synthetic`: 1 000 000 records × 10 attributes with Gaussian values.
    Synthetic,
}

impl DatasetKind {
    /// All four datasets, in the order the paper's figures list them.
    pub const ALL: [DatasetKind; 4] =
        [DatasetKind::Insurance, DatasetKind::Diabetes, DatasetKind::Pamap, DatasetKind::Synthetic];

    /// The dataset's name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Insurance => "insurance",
            DatasetKind::Diabetes => "diabetes",
            DatasetKind::Pamap => "PAMAP",
            DatasetKind::Synthetic => "synthetic",
        }
    }

    /// The full (paper-scale) specification.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            DatasetKind::Insurance => DatasetSpec { kind: *self, rows: 5_822, attributes: 13 },
            DatasetKind::Diabetes => DatasetSpec { kind: *self, rows: 101_767, attributes: 10 },
            DatasetKind::Pamap => DatasetSpec { kind: *self, rows: 376_416, attributes: 15 },
            DatasetKind::Synthetic => DatasetSpec { kind: *self, rows: 1_000_000, attributes: 10 },
        }
    }
}

/// A dataset's size parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which dataset shape to generate.
    pub kind: DatasetKind,
    /// Number of rows `n`.
    pub rows: usize,
    /// Number of attributes `M`.
    pub attributes: usize,
}

impl DatasetSpec {
    /// Scale the row count by `factor` (attributes are kept — the protocols' per-depth
    /// cost depends on `m`, which queries choose, not on `M`).
    pub fn scaled(&self, factor: f64) -> DatasetSpec {
        assert!(factor > 0.0, "scale factor must be positive");
        DatasetSpec {
            kind: self.kind,
            rows: ((self.rows as f64 * factor).round() as usize).max(1),
            attributes: self.attributes,
        }
    }

    /// A small instance with exactly `rows` rows (for tests and laptop benches).
    pub fn with_rows(&self, rows: usize) -> DatasetSpec {
        DatasetSpec { kind: self.kind, rows: rows.max(1), attributes: self.attributes }
    }
}

/// A simple Box–Muller Gaussian sampler (kept local so the crate needs no extra
/// dependencies beyond `rand`).
struct Gaussian {
    mean: f64,
    std_dev: f64,
}

impl Distribution<f64> for Gaussian {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Generate the relation described by `spec`, deterministically from `seed`.
pub fn generate(spec: &DatasetSpec, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed ^ hash_kind(spec.kind));
    let rows: Vec<Row> = (0..spec.rows)
        .map(|i| Row {
            id: ObjectId(i as u64),
            values: (0..spec.attributes).map(|a| sample_value(spec.kind, a, &mut rng)).collect(),
        })
        .collect();
    let names = (0..spec.attributes).map(|a| format!("{}_{a}", spec.kind.name())).collect();
    Relation::new(names, rows)
}

fn hash_kind(kind: DatasetKind) -> u64 {
    match kind {
        DatasetKind::Insurance => 0x1111,
        DatasetKind::Diabetes => 0x2222,
        DatasetKind::Pamap => 0x3333,
        DatasetKind::Synthetic => 0x4444,
    }
}

/// Sample one attribute value with the dataset's characteristic distribution.
fn sample_value(kind: DatasetKind, attribute: usize, rng: &mut StdRng) -> Score {
    match kind {
        // insurance: mostly small categorical / ordinal codes (0..10), a few larger
        // numeric columns — heavy duplication across objects, which stresses SecDedup.
        DatasetKind::Insurance => {
            if attribute.is_multiple_of(4) {
                rng.gen_range(0..=9)
            } else {
                rng.gen_range(0..=40)
            }
        }
        // diabetes: lab values and counts with a skewed (roughly log-normal) shape.
        DatasetKind::Diabetes => {
            let g = Gaussian { mean: 3.0, std_dev: 0.8 }.sample(rng);
            g.exp().clamp(0.0, 500.0) as Score
        }
        // PAMAP: wide-range sensor readings (heart rate, IMU magnitudes, temperature).
        DatasetKind::Pamap => {
            let g = Gaussian { mean: 500.0, std_dev: 220.0 }.sample(rng);
            g.clamp(0.0, 2_000.0) as Score
        }
        // synthetic: Gaussian values as described in §11 ("takes values from Gaussian
        // distribution").
        DatasetKind::Synthetic => {
            let g = Gaussian { mean: 500.0, std_dev: 150.0 }.sample(rng);
            g.clamp(0.0, 1_000.0) as Score
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_specs_match_section_11() {
        assert_eq!(DatasetKind::Insurance.spec().rows, 5_822);
        assert_eq!(DatasetKind::Insurance.spec().attributes, 13);
        assert_eq!(DatasetKind::Diabetes.spec().rows, 101_767);
        assert_eq!(DatasetKind::Diabetes.spec().attributes, 10);
        assert_eq!(DatasetKind::Pamap.spec().rows, 376_416);
        assert_eq!(DatasetKind::Pamap.spec().attributes, 15);
        assert_eq!(DatasetKind::Synthetic.spec().rows, 1_000_000);
        assert_eq!(DatasetKind::Synthetic.spec().attributes, 10);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = DatasetKind::Diabetes.spec().with_rows(50);
        let a = generate(&spec, 9);
        let b = generate(&spec, 9);
        let c = generate(&spec, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 50);
        assert_eq!(a.num_attributes(), 10);
    }

    #[test]
    fn scaling_preserves_attributes_and_scales_rows() {
        let spec = DatasetKind::Pamap.spec().scaled(0.01);
        assert_eq!(spec.attributes, 15);
        assert_eq!(spec.rows, 3_764);
        assert_eq!(DatasetKind::Synthetic.spec().scaled(1e-9).rows, 1);
    }

    #[test]
    fn insurance_has_heavy_value_duplication() {
        // Small categorical domains ⇒ many ties, which is what makes the dataset
        // interesting for SecDedup.
        let r = generate(&DatasetKind::Insurance.spec().with_rows(200), 1);
        let first_attr: std::collections::HashSet<Score> =
            r.rows().iter().map(|row| row.values[0]).collect();
        assert!(first_attr.len() <= 10);
    }

    #[test]
    fn value_ranges_are_sane() {
        for kind in DatasetKind::ALL {
            let r = generate(&kind.spec().with_rows(100), 3);
            for row in r.rows() {
                for &v in &row.values {
                    assert!(v <= 2_000, "{}: value {v} out of expected range", kind.name());
                }
            }
        }
    }

    #[test]
    fn all_four_names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            DatasetKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
