//! The two worked examples of the paper, as ready-made relations.

use sectopk_storage::{ObjectId, Relation, Row};

/// The 5-object, 3-attribute table used in the Fig. 3 walk-through of SecWorst / SecBest
/// / SecDedup (objects X1..X5 are ids 1..5).
pub fn fig3_relation() -> Relation {
    Relation::new(
        vec!["r1".into(), "r2".into(), "r3".into()],
        vec![
            Row { id: ObjectId(1), values: vec![10, 3, 2] },
            Row { id: ObjectId(2), values: vec![8, 8, 0] },
            Row { id: ObjectId(3), values: vec![5, 7, 6] },
            Row { id: ObjectId(4), values: vec![3, 2, 8] },
            Row { id: ObjectId(5), values: vec![1, 1, 1] },
        ],
    )
}

/// The encrypted `patients` heart-disease table of Example 1.1 / Table 1.
///
/// Attributes: age, id number, trestbps (resting blood pressure), chol (serum
/// cholesterol), thalach (maximum heart rate).  The patient names of Table 1 map to the
/// object ids returned here, in order: Bob=1, Celvin=2, David=3, Emma=4, Flora=5.
pub fn patients_relation() -> Relation {
    Relation::new(
        vec!["age".into(), "id".into(), "trestbps".into(), "chol".into(), "thalach".into()],
        vec![
            Row { id: ObjectId(1), values: vec![38, 121, 110, 196, 166] }, // Bob
            Row { id: ObjectId(2), values: vec![43, 222, 120, 201, 160] }, // Celvin
            Row { id: ObjectId(3), values: vec![60, 285, 100, 248, 142] }, // David
            Row { id: ObjectId(4), values: vec![36, 956, 120, 267, 112] }, // Emma
            Row { id: ObjectId(5), values: vec![43, 756, 100, 223, 127] }, // Flora
        ],
    )
}

/// The display names of the patients in [`patients_relation`], indexed by object id.
pub fn patient_name(id: ObjectId) -> &'static str {
    match id.0 {
        1 => "Bob",
        2 => "Celvin",
        3 => "David",
        4 => "Emma",
        5 => "Flora",
        _ => "unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shape_and_scores() {
        let r = fig3_relation();
        assert_eq!(r.len(), 5);
        assert_eq!(r.num_attributes(), 3);
        // Total scores: X3 = 18 is the maximum (Fig. 3c's top-2 is X3, X2).
        let top = r.plaintext_top_k(&[0, 1, 2], &[], 2);
        assert_eq!(top[0].0, ObjectId(3));
        assert_eq!(top[1].0, ObjectId(2));
    }

    #[test]
    fn patients_example_top2_is_david_and_emma() {
        // Example 1.1: top-2 by chol + thalach are David and Emma.
        let r = patients_relation();
        let chol = r.attribute_index("chol").unwrap();
        let thalach = r.attribute_index("thalach").unwrap();
        let top = r.plaintext_top_k(&[chol, thalach], &[], 2);
        let names: Vec<&str> = top.iter().map(|(id, _)| patient_name(*id)).collect();
        assert_eq!(names, vec!["David", "Emma"]);
    }

    #[test]
    fn patient_names_cover_all_rows() {
        let r = patients_relation();
        for row in r.rows() {
            assert_ne!(patient_name(row.id), "unknown");
        }
        assert_eq!(patient_name(ObjectId(99)), "unknown");
    }
}
