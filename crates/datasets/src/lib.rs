//! # sectopk-datasets
//!
//! Paper-shaped dataset generators and query workloads for the SecTopK evaluation (§11).
//!
//! The paper evaluates on three UCI datasets (insurance, diabetes, PAMAP) and a synthetic
//! Gaussian dataset.  The raw UCI files are not bundled with this reproduction; instead
//! each generator produces a deterministic synthetic relation with the same cardinality,
//! attribute count, value ranges and distribution shape (see DESIGN.md §2 — the
//! protocols' cost depends only on those parameters, not on the actual UCI values).
//! Every generator accepts a `scale` factor so tests and laptop benches can run on
//! proportionally smaller instances while `--paper-scale` reproduces the full sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod examples;
pub mod generators;
pub mod workload;

pub use examples::{fig3_relation, patient_name, patients_relation};
pub use generators::{generate, DatasetKind, DatasetSpec};
pub use workload::{QueryWorkload, WorkloadSpec};
