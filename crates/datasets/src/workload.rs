//! Query workload generation following the methodology of §11.2.1: "for each query, we
//! randomly choose the number of attributes m that are used for the ranking function
//! ranging from 2 to 8, and we also vary k between 2 and 20".

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sectopk_storage::TopKQuery;

/// Parameters of a random query workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of queries to generate.
    pub queries: usize,
    /// Inclusive range of the number of scoring attributes `m`.
    pub m_range: (usize, usize),
    /// Inclusive range of `k`.
    pub k_range: (usize, usize),
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        // The paper's ranges: m ∈ [2, 8], k ∈ [2, 20].
        WorkloadSpec { queries: 10, m_range: (2, 8), k_range: (2, 20) }
    }
}

/// A generated workload of top-k queries over a relation with `num_attributes` columns.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryWorkload {
    /// The generated queries.
    pub queries: Vec<TopKQuery>,
}

impl QueryWorkload {
    /// Generate a workload for a relation with `num_attributes` attributes.
    pub fn generate(spec: &WorkloadSpec, num_attributes: usize, seed: u64) -> Self {
        assert!(num_attributes >= 1, "relation needs at least one attribute");
        assert!(spec.m_range.0 >= 1 && spec.m_range.0 <= spec.m_range.1);
        assert!(spec.k_range.0 >= 1 && spec.k_range.0 <= spec.k_range.1);
        let mut rng = StdRng::seed_from_u64(seed);
        let queries = (0..spec.queries)
            .map(|_| {
                let m = rng.gen_range(spec.m_range.0..=spec.m_range.1).min(num_attributes);
                let mut attrs: Vec<usize> = (0..num_attributes).collect();
                attrs.shuffle(&mut rng);
                attrs.truncate(m);
                attrs.sort_unstable();
                let k = rng.gen_range(spec.k_range.0..=spec.k_range.1);
                TopKQuery::sum(attrs, k)
            })
            .collect();
        QueryWorkload { queries }
    }

    /// Deal the workload's queries to `sessions` serving sessions round-robin (query
    /// *i* goes to session `i % sessions`).  This is the assignment the multi-session
    /// query server uses: it is deterministic, keeps the per-session query streams
    /// independent of how many other sessions exist beyond their count, and balances
    /// the load to within one query.  Sessions may come back empty when there are fewer
    /// queries than sessions.
    pub fn partition(&self, sessions: usize) -> Vec<Vec<TopKQuery>> {
        assert!(sessions >= 1, "at least one session required");
        let mut slices: Vec<Vec<TopKQuery>> =
            (0..sessions).map(|_| Vec::with_capacity(self.queries.len() / sessions + 1)).collect();
        for (i, query) in self.queries.iter().enumerate() {
            slices[i % sessions].push(query.clone());
        }
        slices
    }

    /// A fixed-parameter workload (one query with exactly `m` attributes and the given
    /// `k`), the configuration most of the paper's figures sweep over.
    pub fn fixed(num_attributes: usize, m: usize, k: usize, seed: u64) -> TopKQuery {
        assert!(m >= 1 && m <= num_attributes, "m must be in [1, M]");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut attrs: Vec<usize> = (0..num_attributes).collect();
        attrs.shuffle(&mut rng);
        attrs.truncate(m);
        attrs.sort_unstable();
        TopKQuery::sum(attrs, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_queries_respect_the_spec() {
        let spec = WorkloadSpec { queries: 25, m_range: (2, 5), k_range: (2, 9) };
        let w = QueryWorkload::generate(&spec, 10, 77);
        assert_eq!(w.queries.len(), 25);
        for q in &w.queries {
            assert!(q.num_attributes() >= 2 && q.num_attributes() <= 5);
            assert!(q.k >= 2 && q.k <= 9);
            assert!(q.validate(10).is_ok());
        }
    }

    #[test]
    fn m_is_clamped_to_the_relation_width() {
        let spec = WorkloadSpec { queries: 5, m_range: (4, 8), k_range: (2, 3) };
        let w = QueryWorkload::generate(&spec, 3, 1);
        for q in &w.queries {
            assert!(q.num_attributes() <= 3);
            assert!(q.validate(3).is_ok());
        }
    }

    #[test]
    fn fixed_workload_is_deterministic() {
        let a = QueryWorkload::fixed(10, 3, 5, 42);
        let b = QueryWorkload::fixed(10, 3, 5, 42);
        assert_eq!(a, b);
        assert_eq!(a.num_attributes(), 3);
        assert_eq!(a.k, 5);
    }

    #[test]
    fn generation_is_seeded() {
        let spec = WorkloadSpec::default();
        assert_eq!(QueryWorkload::generate(&spec, 8, 5), QueryWorkload::generate(&spec, 8, 5));
        assert_ne!(QueryWorkload::generate(&spec, 8, 5), QueryWorkload::generate(&spec, 8, 6));
    }

    #[test]
    #[should_panic(expected = "m must be in")]
    fn fixed_rejects_oversized_m() {
        let _ = QueryWorkload::fixed(2, 5, 1, 0);
    }

    #[test]
    fn partition_deals_round_robin_and_preserves_order() {
        let spec = WorkloadSpec { queries: 7, m_range: (2, 3), k_range: (2, 4) };
        let w = QueryWorkload::generate(&spec, 6, 3);
        let parts = w.partition(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 7);
        assert_eq!(parts[0].len(), 3);
        assert_eq!(parts[1].len(), 2);
        assert_eq!(parts[0][0], w.queries[0]);
        assert_eq!(parts[1][0], w.queries[1]);
        assert_eq!(parts[2][1], w.queries[5]);
        // One session gets everything; surplus sessions stay empty.
        assert_eq!(w.partition(1)[0], w.queries);
        assert!(w.partition(9).iter().skip(7).all(Vec::is_empty));
    }
}
