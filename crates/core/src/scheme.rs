//! The `SecTopK = (Enc, Token, SecQuery)` scheme facade (Definition 4.1).
//!
//! This module wires the lower layers together the way the paper's deployment does:
//!
//! 1. the **data owner** generates keys and encrypts its relation ([`DataOwner`]),
//! 2. an **authorized client** turns a SQL-like top-k query into a token
//!    ([`AuthorizedClient`]),
//! 3. the **clouds** run [`crate::query::sec_query`] on the encrypted relation and return
//!    the encrypted answer, which the key holder interprets with
//!    [`crate::results::resolve_results`].

use rand::{CryptoRng, RngCore};

use sectopk_crypto::keys::MasterKeys;
use sectopk_crypto::paillier::DEFAULT_MODULUS_BITS;
use sectopk_crypto::DEFAULT_EHL_KEYS;
use sectopk_storage::{
    encrypt_relation, encrypt_relation_parallel, generate_token, EncryptedRelation,
    EncryptionStats, QueryToken, Relation, TopKQuery,
};

use crate::error::Result;

/// The data owner: holds the master keys, encrypts relations, and authorises clients.
#[derive(Clone, Debug)]
pub struct DataOwner {
    keys: MasterKeys,
}

impl DataOwner {
    /// Create a data owner with freshly generated keys.
    ///
    /// `modulus_bits` controls the Paillier modulus size (the paper's experiments use a
    /// 128-bit security level; tests use smaller moduli for speed) and `ehl_keys` the
    /// number `s` of EHL PRF keys (the paper uses `s = 5`).
    pub fn new<R: RngCore + CryptoRng>(
        modulus_bits: usize,
        ehl_keys: usize,
        rng: &mut R,
    ) -> Result<Self> {
        Ok(DataOwner { keys: MasterKeys::generate(modulus_bits, ehl_keys, rng)? })
    }

    /// Build a data owner around existing key material (e.g. keys restored from a
    /// serving deployment's key store).
    pub fn from_keys(keys: MasterKeys) -> Self {
        DataOwner { keys }
    }

    /// Create a data owner with the library defaults (256-bit modulus, `s = 5`).
    pub fn with_defaults<R: RngCore + CryptoRng>(rng: &mut R) -> Result<Self> {
        Self::new(DEFAULT_MODULUS_BITS, DEFAULT_EHL_KEYS, rng)
    }

    /// The owner's key material (needed to set up the clouds and to resolve results).
    pub fn keys(&self) -> &MasterKeys {
        &self.keys
    }

    /// `Enc(λ, R)`: encrypt a relation for outsourcing (Algorithm 2), single-threaded.
    pub fn encrypt<R: RngCore + CryptoRng>(
        &self,
        relation: &Relation,
        rng: &mut R,
    ) -> Result<(EncryptedRelation, EncryptionStats)> {
        Ok(encrypt_relation(relation, &self.keys, rng)?)
    }

    /// `Enc(λ, R)` with one worker thread per attribute list (the setup measured in
    /// Fig. 7a / Fig. 8a uses heavy parallelism).
    pub fn encrypt_parallel<R: RngCore + CryptoRng>(
        &self,
        relation: &Relation,
        rng: &mut R,
    ) -> Result<(EncryptedRelation, EncryptionStats)> {
        Ok(encrypt_relation_parallel(relation, &self.keys, rng)?)
    }

    /// Hand an authorized client the key material it needs for token generation.
    pub fn authorize_client(&self) -> AuthorizedClient {
        AuthorizedClient { keys: self.keys.clone() }
    }
}

/// An authorized client: can turn queries into tokens (and, in this reproduction, asks
/// the owner to resolve encrypted results — see `crate::results`).
#[derive(Clone, Debug)]
pub struct AuthorizedClient {
    keys: MasterKeys,
}

impl AuthorizedClient {
    /// Build a client directly from the owner's key bundle — what
    /// [`DataOwner::authorize_client`] hands out, exposed for serving layers that hold
    /// the keys themselves (e.g. the multi-session query server generating tokens on
    /// behalf of its connected clients).
    pub fn from_keys(keys: MasterKeys) -> Self {
        AuthorizedClient { keys }
    }

    /// `Token(K, q)`: build the query token for a relation with `num_attributes` columns.
    pub fn token(&self, num_attributes: usize, query: &TopKQuery) -> Result<QueryToken> {
        Ok(generate_token(&self.keys.prp_key, num_attributes, query)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::paillier::MIN_MODULUS_BITS;
    use sectopk_protocols::TwoClouds;
    use sectopk_storage::{ObjectId, Row};

    #[test]
    fn owner_encrypts_and_client_builds_tokens() {
        let mut rng = StdRng::seed_from_u64(11);
        let owner = DataOwner::new(MIN_MODULUS_BITS, 3, &mut rng).unwrap();
        let relation = Relation::from_rows(vec![
            Row { id: ObjectId(1), values: vec![3, 9] },
            Row { id: ObjectId(2), values: vec![5, 1] },
        ]);
        let (er, stats) = owner.encrypt(&relation, &mut rng).unwrap();
        assert_eq!(er.setup_leakage(), (2, 2));
        assert_eq!(stats.num_attributes, 2);

        let client = owner.authorize_client();
        let token = client.token(2, &TopKQuery::sum(vec![0, 1], 1)).unwrap();
        assert_eq!(token.k, 1);
        assert_eq!(token.num_attributes(), 2);
        assert!(client.token(2, &TopKQuery::sum(vec![5], 1)).is_err());

        let clouds = TwoClouds::new(owner.keys(), 3).unwrap();
        assert_eq!(clouds.pk().n(), owner.keys().paillier_public.n());
    }
}
