//! The `Session` abstraction: one front door for executing top-k queries, whether the
//! caller talks to a dedicated two-cloud deployment ([`DirectSession`]) or to a shared
//! multi-session query server (`sectopk-server::QueryClient`).
//!
//! ```text
//!   Query::top_k(k).attributes(…)           DataOwner::outsource(R)
//!            │                                       │
//!            ▼                                       ▼
//!   session.execute(&query) ──▶ token ──▶ plan (Auto: §11 cost model) ──▶ SecQuery
//!            │                                                              │
//!            ▼                                                              ▼
//!      ResolvedTopK  ◀── resolve_results ◀── encrypted top-k + QueryStats (incl. plan)
//! ```
//!
//! Every implementation executes through the same [`execute_with_clouds`] engine, so
//! tests, benches and examples observe identical behaviour regardless of which session
//! type they run against.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{CryptoRng, RngCore, SeedableRng};

use sectopk_crypto::keys::MasterKeys;
use sectopk_protocols::{
    ChannelMetrics, LeakageLedger, LinkProfile, RetryPolicy, TcpOptions, TransportKind, TwoClouds,
};
use sectopk_storage::{encrypt_relation, EncryptedRelation, EncryptionStats, ObjectId, Relation};

use crate::builder::{Query, VariantChoice};
use crate::error::Result;
use crate::planner::{self, PlanDecision, PlannerInputs};
use crate::query::{sec_query, QueryOutcome, QueryStats};
use crate::results::{resolve_results, ResolvedResult};
use crate::scheme::DataOwner;

/// An outsourced relation: the encrypted lists plus the owner-side object-id universe
/// needed to resolve encrypted answers.  Cheap to clone (both halves are `Arc`-shared),
/// so any number of sessions and servers can serve the same outsourcing.
#[derive(Clone, Debug)]
pub struct Outsourced {
    er: Arc<EncryptedRelation>,
    object_ids: Arc<Vec<ObjectId>>,
}

impl Outsourced {
    /// Bundle an already-encrypted relation with its object-id universe (the ids the
    /// key holder will test candidate results against).
    pub fn from_parts(er: EncryptedRelation, object_ids: Vec<ObjectId>) -> Self {
        Outsourced { er: Arc::new(er), object_ids: Arc::new(object_ids) }
    }

    /// The encrypted relation.
    pub fn er(&self) -> &EncryptedRelation {
        &self.er
    }

    /// Shared handle to the encrypted relation.
    pub fn er_arc(&self) -> Arc<EncryptedRelation> {
        Arc::clone(&self.er)
    }

    /// The object-id universe used for result resolution.
    pub fn object_ids(&self) -> &[ObjectId] {
        &self.object_ids
    }

    /// Shared handle to the object-id universe.
    pub fn object_ids_arc(&self) -> Arc<Vec<ObjectId>> {
        Arc::clone(&self.object_ids)
    }

    /// Number of objects `n`.
    pub fn num_objects(&self) -> usize {
        self.er.num_objects()
    }

    /// Number of attributes `M`.
    pub fn num_attributes(&self) -> usize {
        self.er.num_attributes()
    }
}

/// A fully resolved query answer: the identified objects with their decrypted bounds,
/// plus the encrypted outcome and execution statistics (including the planner's
/// decision).
#[derive(Clone, Debug)]
pub struct ResolvedTopK {
    /// The resolved results, best first.
    pub results: Vec<ResolvedResult>,
    /// The raw encrypted outcome and its statistics.
    pub outcome: QueryOutcome,
}

impl ResolvedTopK {
    /// The identified object ids in result order, skipping neutralised placeholders.
    pub fn object_ids(&self) -> Vec<ObjectId> {
        crate::results::resolved_object_ids(&self.results)
    }

    /// The execution statistics.
    pub fn stats(&self) -> &QueryStats {
        &self.outcome.stats
    }

    /// The planner decision this execution ran under.
    pub fn plan(&self) -> Option<&PlanDecision> {
        self.outcome.stats.plan.as_ref()
    }
}

/// One query-execution session against an outsourced relation — the `SecQuery` side of
/// the scheme behind a uniform, hard-to-misuse surface.
///
/// Implemented by [`DirectSession`] (a dedicated two-cloud deployment) and by
/// `sectopk-server::QueryClient` (one session of a shared multi-session server), so
/// every test, bench and example runs against the same abstraction.
pub trait Session {
    /// Number of objects `n` of the outsourced relation.
    fn num_objects(&self) -> usize;

    /// Number of attributes `M` of the outsourced relation.
    fn num_attributes(&self) -> usize;

    /// The inter-cloud link this session runs over (feeds the planner's cost model).
    fn link(&self) -> LinkProfile;

    /// Whether round-trip batching is enabled on the transport.
    fn batching(&self) -> bool;

    /// Execute one query end to end: validate, mint the token, plan the variant (when
    /// the query says [`VariantChoice::Auto`]), run `SecQuery`, and resolve the
    /// encrypted answer with the key holder's material.
    fn execute(&mut self, query: &Query) -> Result<ResolvedTopK>;

    /// Cumulative channel traffic of this session.
    fn metrics(&self) -> ChannelMetrics;

    /// Snapshot of everything this session's S1 observed.
    fn s1_ledger(&self) -> LeakageLedger;

    /// Snapshot of everything this session's S2 engine observed.
    fn s2_ledger(&self) -> LeakageLedger;

    /// Reset the channel metrics and both ledgers (e.g. between queries).
    fn reset_accounting(&mut self);

    /// The plan the session would run `query` under, without executing it.
    fn plan(&self, query: &Query) -> PlanDecision {
        plan_for(query, self.num_objects(), self.link(), self.batching())
    }
}

/// Resolve a query's variant choice into a recorded [`PlanDecision`] for a session with
/// the given shape.
pub fn plan_for(query: &Query, n: usize, link: LinkProfile, batching: bool) -> PlanDecision {
    let inputs = PlannerInputs::new(
        n,
        query.spec().num_attributes(),
        query.spec().k,
        link.rtt.as_secs_f64() * 1_000.0,
        batching,
    );
    match query.variant() {
        VariantChoice::Auto => planner::plan(&inputs),
        VariantChoice::Fixed(variant) => planner::record_fixed(&inputs, variant),
    }
}

/// The shared execution engine behind every [`Session`] implementation: token, plan,
/// `SecQuery`, resolution.  `keys` is the key holder's material (token generation and
/// result resolution both need it) and `rng` its local randomness.
pub fn execute_with_clouds<R: RngCore + CryptoRng>(
    clouds: &mut TwoClouds,
    er: &EncryptedRelation,
    object_ids: &[ObjectId],
    keys: &MasterKeys,
    rng: &mut R,
    query: &Query,
) -> Result<ResolvedTopK> {
    query.validate_for(er.num_attributes())?;
    let token = sectopk_storage::generate_token(&keys.prp_key, er.num_attributes(), query.spec())?;
    let decision = plan_for(query, er.num_objects(), clouds.link_profile(), clouds.batching());
    let config = query.config_with(decision.variant);
    let mut outcome = sec_query(clouds, er, &token, &config)?;
    outcome.stats.plan = Some(decision);
    let results = resolve_results(&outcome.top_k, object_ids, keys, rng)?;
    Ok(ResolvedTopK { results, outcome })
}

/// A dedicated two-cloud session: the data owner's keys, the outsourced relation, and a
/// private [`TwoClouds`] deployment.  Create one with [`DataOwner::connect`].
#[derive(Debug)]
pub struct DirectSession {
    clouds: TwoClouds,
    outsourced: Outsourced,
    keys: MasterKeys,
    rng: StdRng,
}

/// The key holder's result-resolution RNG for a session with the given seed.
///
/// Every [`Session`] implementation — [`DirectSession`] here and the query server's
/// `QueryClient` — derives its resolution randomness through this one function, so a
/// session replayed with the same seed resolves identically regardless of which
/// deployment shape it runs in.  It is independent of the clouds' protocol randomness.
pub fn resolution_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ 0x7E50_15E5)
}

impl DirectSession {
    pub(crate) fn new(
        clouds: TwoClouds,
        outsourced: Outsourced,
        keys: MasterKeys,
        seed: u64,
    ) -> Self {
        DirectSession { clouds, outsourced, keys, rng: resolution_rng(seed) }
    }

    /// The underlying two-cloud context — the protocol-level escape hatch for tests and
    /// tools that drive individual sub-protocols (`sec_worst_depth`, `sec_dedup`, …).
    pub fn clouds(&self) -> &TwoClouds {
        &self.clouds
    }

    /// Mutable access to the underlying two-cloud context.
    pub fn clouds_mut(&mut self) -> &mut TwoClouds {
        &mut self.clouds
    }

    /// The outsourced relation this session queries.
    pub fn outsourced(&self) -> &Outsourced {
        &self.outsourced
    }
}

impl Session for DirectSession {
    fn num_objects(&self) -> usize {
        self.outsourced.num_objects()
    }

    fn num_attributes(&self) -> usize {
        self.outsourced.num_attributes()
    }

    fn link(&self) -> LinkProfile {
        self.clouds.link_profile()
    }

    fn batching(&self) -> bool {
        self.clouds.batching()
    }

    fn execute(&mut self, query: &Query) -> Result<ResolvedTopK> {
        let outsourced = self.outsourced.clone();
        execute_with_clouds(
            &mut self.clouds,
            outsourced.er(),
            outsourced.object_ids(),
            &self.keys,
            &mut self.rng,
            query,
        )
    }

    fn metrics(&self) -> ChannelMetrics {
        self.clouds.channel()
    }

    fn s1_ledger(&self) -> LeakageLedger {
        self.clouds.s1_ledger().clone()
    }

    fn s2_ledger(&self) -> LeakageLedger {
        self.clouds.s2_ledger()
    }

    fn reset_accounting(&mut self) {
        self.clouds.reset_accounting();
    }
}

impl DataOwner {
    /// `Enc(λ, R)` plus the bookkeeping a serving deployment needs: encrypt the
    /// relation and bundle it with its object-id universe for later result resolution.
    pub fn outsource<R: RngCore + CryptoRng>(
        &self,
        relation: &Relation,
        rng: &mut R,
    ) -> Result<(Outsourced, EncryptionStats)> {
        let (er, stats) = encrypt_relation(relation, self.keys(), rng)?;
        let object_ids = relation.rows().iter().map(|r| r.id).collect();
        Ok((Outsourced::from_parts(er, object_ids), stats))
    }

    /// [`DataOwner::outsource`] with one worker thread per attribute list (the setup
    /// measured in Fig. 7a / Fig. 8a uses heavy parallelism).
    pub fn outsource_parallel<R: RngCore + CryptoRng>(
        &self,
        relation: &Relation,
        rng: &mut R,
    ) -> Result<(Outsourced, EncryptionStats)> {
        let (er, stats) = sectopk_storage::encrypt_relation_parallel(relation, self.keys(), rng)?;
        let object_ids = relation.rows().iter().map(|r| r.id).collect();
        Ok((Outsourced::from_parts(er, object_ids), stats))
    }

    /// Open a dedicated two-cloud session on `outsourced` with the transport selected
    /// by the `SECTOPK_TRANSPORT` environment variable and batching enabled.
    pub fn connect(&self, outsourced: &Outsourced, seed: u64) -> Result<DirectSession> {
        self.connect_with(outsourced, seed, TransportKind::from_env(), true)
    }

    /// Open a dedicated two-cloud session with an explicit transport and batching
    /// policy (what the transport-equivalence suite sweeps).
    pub fn connect_with(
        &self,
        outsourced: &Outsourced,
        seed: u64,
        kind: TransportKind,
        batching: bool,
    ) -> Result<DirectSession> {
        let clouds = TwoClouds::with_transport(self.keys(), seed, kind, batching)?;
        Ok(DirectSession::new(clouds, outsourced.clone(), self.keys().clone(), seed))
    }
}

/// A networked two-cloud session: S1 runs locally, the crypto cloud S2 is a remote
/// `sectopk-s2d` process reached over a real TCP socket.  Create one with
/// [`DataOwner::connect_remote`]; it mirrors [`DataOwner::connect`], so callers switch
/// from in-process to networked execution by changing one constructor — everything
/// downstream is the same [`Session`] front door.
///
/// Determinism carries over the wire: a remote session with seed *s* produces results,
/// ledgers and metrics byte-identical to a [`DirectSession`] with seed *s* (the
/// connection handshake provisions the remote S2 engine from the same seed derivation).
#[derive(Debug)]
pub struct RemoteSession {
    inner: DirectSession,
    addr: String,
    retry: RetryPolicy,
}

impl RemoteSession {
    /// The `host:port` address of the S2 process this session is connected to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The transparent-retry budget this session's transport runs under: how it
    /// reconnects, resumes its server-side session and re-sends the unacknowledged
    /// exchange after a transient failure.  [`RetryPolicy::none`] (the default) fails
    /// fast; failures that outlive the budget surface as transient
    /// [`SecTopKError`](crate::SecTopKError)s — see
    /// [`SecTopKError::is_transient`](crate::SecTopKError::is_transient).
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The underlying two-cloud context — the protocol-level escape hatch the
    /// failure-injection suite uses to drive raw round trips over the socket.
    pub fn clouds(&self) -> &TwoClouds {
        self.inner.clouds()
    }

    /// Mutable access to the underlying two-cloud context.
    pub fn clouds_mut(&mut self) -> &mut TwoClouds {
        self.inner.clouds_mut()
    }

    /// The outsourced relation this session queries.
    pub fn outsourced(&self) -> &Outsourced {
        self.inner.outsourced()
    }
}

impl Session for RemoteSession {
    fn num_objects(&self) -> usize {
        self.inner.num_objects()
    }

    fn num_attributes(&self) -> usize {
        self.inner.num_attributes()
    }

    fn link(&self) -> LinkProfile {
        self.inner.link()
    }

    fn batching(&self) -> bool {
        self.inner.batching()
    }

    fn execute(&mut self, query: &Query) -> Result<ResolvedTopK> {
        self.inner.execute(query)
    }

    fn metrics(&self) -> ChannelMetrics {
        self.inner.metrics()
    }

    fn s1_ledger(&self) -> LeakageLedger {
        self.inner.s1_ledger()
    }

    fn s2_ledger(&self) -> LeakageLedger {
        self.inner.s2_ledger()
    }

    fn reset_accounting(&mut self) {
        self.inner.reset_accounting();
    }
}

impl DataOwner {
    /// Open a networked two-cloud session on `outsourced` against the `sectopk-s2d`
    /// process listening at `addr` (`"host:port"`), with batching enabled and default
    /// connection policy.  Mirrors [`DataOwner::connect`].
    pub fn connect_remote(
        &self,
        outsourced: &Outsourced,
        addr: &str,
        seed: u64,
    ) -> Result<RemoteSession> {
        self.connect_remote_with(outsourced, addr, seed, true, TcpOptions::default())
    }

    /// [`DataOwner::connect_remote`] with an explicit batching policy and connection
    /// options (retry budget, timeouts, proposed session id).
    pub fn connect_remote_with(
        &self,
        outsourced: &Outsourced,
        addr: &str,
        seed: u64,
        batching: bool,
        options: TcpOptions,
    ) -> Result<RemoteSession> {
        let retry = options.retry;
        let clouds = TwoClouds::connect_tcp(self.keys(), seed, batching, addr, options)?;
        let inner = DirectSession::new(clouds, outsourced.clone(), self.keys().clone(), seed);
        Ok(RemoteSession { inner, addr: addr.to_string(), retry })
    }
}

/// The builder surface must stay object-safe enough for generic serving code; this
/// compile-time assertion pins `Session` as usable behind a `&mut dyn` reference.
const _: fn(&mut dyn Session) = |_| {};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sectopk_storage::Row;

    use crate::builder::Query;
    use crate::query::QueryVariant;

    fn fixture() -> (DataOwner, Relation, Outsourced) {
        let mut rng = StdRng::seed_from_u64(0x5E55);
        let owner = DataOwner::new(128, 3, &mut rng).unwrap();
        let relation = Relation::new(
            vec!["a".into(), "b".into()],
            vec![
                Row { id: ObjectId(1), values: vec![10, 3] },
                Row { id: ObjectId(2), values: vec![8, 8] },
                Row { id: ObjectId(3), values: vec![5, 7] },
            ],
        );
        let (outsourced, stats) = owner.outsource(&relation, &mut rng).unwrap();
        assert_eq!(stats.num_objects, 3);
        (owner, relation, outsourced)
    }

    #[test]
    fn direct_session_executes_an_auto_query_end_to_end() {
        let (owner, relation, outsourced) = fixture();
        let mut session = owner.connect(&outsourced, 42).unwrap();
        assert_eq!(session.num_objects(), 3);
        assert_eq!(session.num_attributes(), 2);
        assert!(session.batching());

        let query = Query::top_k(1).attributes(["a", "b"]).resolve(&relation).unwrap();
        let plan = session.plan(&query);
        assert_eq!(plan.variant, QueryVariant::Full, "tiny relation must stay fully private");

        let resolved = session.execute(&query).unwrap();
        assert_eq!(resolved.object_ids(), vec![ObjectId(2)]); // 8 + 8 = 16 wins
        assert_eq!(resolved.plan().unwrap().variant, QueryVariant::Full);
        assert!(resolved.plan().unwrap().auto);
        assert!(resolved.stats().depths_scanned > 0);
        assert!(session.metrics().bytes > 0);
        assert!(!session.s2_ledger().is_empty());

        session.reset_accounting();
        assert_eq!(session.metrics().total_messages(), 0);
        assert!(session.s1_ledger().is_empty());
    }

    #[test]
    fn out_of_range_queries_fail_before_touching_the_clouds() {
        let (owner, _relation, outsourced) = fixture();
        let mut session = owner.connect(&outsourced, 7).unwrap();
        let query = Query::top_k(1).attribute_indices([9]).build().unwrap();
        let err = session.execute(&query).unwrap_err();
        assert!(err.is_invalid_query(), "got {err:?}");
        assert_eq!(session.metrics().total_messages(), 0, "no protocol traffic on a bad query");
    }

    #[test]
    fn fixed_variants_are_honoured_and_recorded() {
        let (owner, relation, outsourced) = fixture();
        let mut session = owner.connect(&outsourced, 9).unwrap();
        let query = Query::top_k(2)
            .attributes(["a", "b"])
            .variant(VariantChoice::Fixed(QueryVariant::Batched { p: 2 }))
            .resolve(&relation)
            .unwrap();
        let resolved = session.execute(&query).unwrap();
        let plan = resolved.plan().unwrap();
        assert_eq!(plan.variant, QueryVariant::Batched { p: 2 });
        assert!(!plan.auto);
    }
}
