//! # sectopk-core
//!
//! The primary contribution of *"Top-k Query Processing on Encrypted Databases with
//! Strong Security Guarantees"* (Meng, Zhu, Kollios; ICDE 2018): **SecTopK**, an
//! adaptively CQA-secure scheme for answering top-k ranking queries over an outsourced,
//! probabilistically encrypted relation using two non-colluding semi-honest clouds.
//!
//! The crate stitches the lower layers together:
//!
//! | Paper component | Module |
//! |---|---|
//! | `SecTopK = (Enc, Token, SecQuery)` facade (Definition 4.1) | [`scheme`] |
//! | Plaintext NRA baseline (Algorithm 1) | [`nra`] |
//! | Secure query processing `Qry_F` / `Qry_E` / `Qry_Ba` (Algorithm 3, §10) | [`query`] |
//! | Result interpretation by the key holder | [`results`] |
//! | Leakage profiles of Theorem 9.2 as executable checks | [`leakage`] |
//! | Secure top-k join `./sec` (§12) | [`join`] |
//!
//! ## End-to-end example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use sectopk_core::{sec_query, resolve_results, DataOwner, QueryConfig};
//! use sectopk_storage::{ObjectId, Relation, Row, TopKQuery};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! // Data owner: generate keys and outsource an encrypted relation.
//! let owner = DataOwner::new(128, 3, &mut rng).unwrap();
//! let relation = Relation::from_rows(vec![
//!     Row { id: ObjectId(1), values: vec![10, 3] },
//!     Row { id: ObjectId(2), values: vec![8, 8] },
//!     Row { id: ObjectId(3), values: vec![5, 7] },
//! ]);
//! let (er, _) = owner.encrypt(&relation, &mut rng).unwrap();
//!
//! // Client: top-1 by attr0 + attr1.
//! let client = owner.authorize_client();
//! let token = client.token(2, &TopKQuery::sum(vec![0, 1], 1)).unwrap();
//!
//! // Clouds: run the secure query.
//! let mut clouds = owner.setup_clouds(42).unwrap();
//! let outcome = sec_query(&mut clouds, &er, &token, &QueryConfig::dup_elim()).unwrap();
//!
//! // Key holder: identify the encrypted answer.
//! let ids: Vec<ObjectId> = relation.rows().iter().map(|r| r.id).collect();
//! let resolved = resolve_results(&outcome.top_k, &ids, owner.keys(), &mut rng).unwrap();
//! assert_eq!(resolved[0].object, Some(ObjectId(2))); // 8 + 8 = 16 is the highest score
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod join;
pub mod leakage;
pub mod nra;
pub mod query;
pub mod results;
pub mod scheme;

pub use join::{
    encrypt_for_join, join_token, top_k_join, JoinEncryptedRelation, JoinOutcome, JoinQuery,
    JoinToken,
};
pub use leakage::{check_leakage, profile_for, LeakageProfile};
pub use nra::{nra_top_k, NraOutcome};
pub use query::{sec_query, QueryConfig, QueryOutcome, QueryStats, QueryVariant};
pub use results::{resolve_results, resolved_object_ids, ResolvedResult};
pub use scheme::{AuthorizedClient, DataOwner};
