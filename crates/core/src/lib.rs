//! # sectopk-core
//!
//! The primary contribution of *"Top-k Query Processing on Encrypted Databases with
//! Strong Security Guarantees"* (Meng, Zhu, Kollios; ICDE 2018): **SecTopK**, an
//! adaptively CQA-secure scheme for answering top-k ranking queries over an outsourced,
//! probabilistically encrypted relation using two non-colluding semi-honest clouds.
//!
//! The crate exposes the scheme through one front door — a fluent [`QueryBuilder`] and
//! the [`Session`] trait — and stitches the lower layers together behind it:
//!
//! | Paper component | Module |
//! |---|---|
//! | `SecTopK = (Enc, Token, SecQuery)` facade (Definition 4.1) | [`scheme`] |
//! | Fluent, validated query construction | [`builder`] |
//! | Adaptive variant selection (the §11 cost model as code) | [`planner`] |
//! | One execution abstraction over direct and served deployments | [`session`] |
//! | Unified error model across crypto / storage / protocol layers | [`error`] |
//! | Plaintext NRA baseline (Algorithm 1) | [`nra`] |
//! | Secure query processing `Qry_F` / `Qry_E` / `Qry_Ba` (Algorithm 3, §10) | [`query`] |
//! | Result interpretation by the key holder | [`results`] |
//! | Leakage profiles of Theorem 9.2 as executable checks | [`leakage`] |
//! | Secure top-k join `./sec` (§12) | [`join`] |
//!
//! ## End-to-end example
//!
//! The data owner encrypts and outsources a relation, a client describes a query with
//! the builder (the planner picks the processing variant), and a [`Session`] executes
//! it against the two clouds:
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use sectopk_core::{DataOwner, Query, Session};
//! use sectopk_storage::{ObjectId, Relation, Row};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! // Data owner: generate keys and outsource an encrypted relation.
//! let owner = DataOwner::new(128, 3, &mut rng).unwrap();
//! let relation = Relation::new(
//!     vec!["price".into(), "rating".into()],
//!     vec![
//!         Row { id: ObjectId(1), values: vec![10, 3] },
//!         Row { id: ObjectId(2), values: vec![8, 8] },
//!         Row { id: ObjectId(3), values: vec![5, 7] },
//!     ],
//! );
//! let (outsourced, _stats) = owner.outsource(&relation, &mut rng).unwrap();
//!
//! // Client: top-1 by price + rating; `variant(Auto)` (the default) lets the planner
//! // choose Qry_F / Qry_E / Qry_Ba from the relation size and link profile.
//! let query = Query::top_k(1).attributes(["price", "rating"]).resolve(&relation).unwrap();
//!
//! // One front door: a session executes the query end to end (token → plan →
//! // SecQuery → resolution) and reports what the planner decided.
//! let mut session = owner.connect(&outsourced, 42).unwrap();
//! let answer = session.execute(&query).unwrap();
//! assert_eq!(answer.object_ids(), vec![ObjectId(2)]); // 8 + 8 = 16 is the highest score
//! assert!(answer.plan().unwrap().auto);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[deny(missing_docs)]
pub mod builder;
#[deny(missing_docs)]
pub mod error;
pub mod join;
pub mod leakage;
pub mod nra;
#[deny(missing_docs)]
pub mod planner;
pub mod query;
pub mod results;
pub mod scheme;
#[deny(missing_docs)]
pub mod session;

pub use builder::{Query, QueryBuilder, VariantChoice};
pub use error::{Result, SecTopKError};
pub use join::{
    encrypt_for_join, join_token, top_k_join, JoinEncryptedRelation, JoinOutcome, JoinQuery,
    JoinToken,
};
pub use leakage::{check_leakage, check_ledgers, profile_for, LeakageProfile, LeakageViolation};
pub use nra::{nra_top_k, NraOutcome};
pub use planner::{plan, PlanDecision, PlannerInputs, VariantCosts};
pub use query::{sec_query, QueryConfig, QueryOutcome, QueryStats, QueryVariant};
pub use results::{resolve_results, resolved_object_ids, ResolvedResult};
pub use scheme::{AuthorizedClient, DataOwner};
pub use session::{
    execute_with_clouds, plan_for, resolution_rng, DirectSession, Outsourced, RemoteSession,
    ResolvedTopK, Session,
};

// Re-exported so facade users can describe link profiles, transports and remote
// connection policy without depending on the protocols crate directly.
pub use sectopk_protocols::{FaultPlan, LinkProfile, RetryPolicy, TcpOptions, TransportKind};
