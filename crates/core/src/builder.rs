//! The fluent query builder — the single validated entry point for describing a top-k
//! query against a [`crate::Session`].
//!
//! ```text
//! SELECT * FROM ER ORDER BY w1·a1 + w3·a3 STOP AFTER 5
//!   ⇔  Query::top_k(5).attributes(["a1", "a3"]).weights([w1, w3]).resolve(&schema)?
//! ```
//!
//! A [`QueryBuilder`] collects the attribute set (by name or by index), optional
//! weights, the variant choice ([`VariantChoice::Auto`] by default — the
//! [`crate::planner`] picks `Qry_F`/`Qry_E`/`Qry_Ba` and `p` from the §11 cost model)
//! and an optional depth cap, then validates everything into an immutable [`Query`].
//! Range checks against the relation width happen again at execution time, because only
//! the session knows the outsourced relation's `M`.

use sectopk_storage::{QueryError, Relation, Score, TopKQuery};

use crate::error::Result;
use crate::query::{QueryConfig, QueryVariant};

/// How the processing variant is chosen for a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VariantChoice {
    /// Let the [`crate::planner`] pick the variant (and `p`) from the §11 cost model.
    Auto,
    /// Run exactly this variant.
    Fixed(QueryVariant),
}

/// The attribute selection a builder carries before validation.
#[derive(Clone, Debug)]
enum AttrSel {
    /// Nothing chosen yet.
    Unset,
    /// Logical attribute indices.
    Indices(Vec<usize>),
    /// Attribute names, to be resolved against a schema.
    Names(Vec<String>),
}

/// A validated top-k query plus its execution policy — what [`crate::Session::execute`]
/// consumes.  Build one with [`Query::top_k`].
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    spec: TopKQuery,
    variant: VariantChoice,
    max_depth: Option<usize>,
}

impl Query {
    /// Start building a top-k query for `k` results.
    pub fn top_k(k: usize) -> QueryBuilder {
        QueryBuilder {
            k,
            attributes: AttrSel::Unset,
            weights: Vec::new(),
            variant: VariantChoice::Auto,
            max_depth: None,
        }
    }

    /// Wrap an already-validated [`TopKQuery`] (e.g. one drawn from a generated
    /// workload) with the adaptive variant choice.
    pub fn from_spec(spec: TopKQuery) -> Self {
        Query { spec, variant: VariantChoice::Auto, max_depth: None }
    }

    /// Replace the variant choice of an existing query.
    pub fn with_variant(mut self, variant: VariantChoice) -> Self {
        self.variant = variant;
        self
    }

    /// Replace the depth cap of an existing query.
    pub fn with_max_depth(mut self, depths: usize) -> Self {
        self.max_depth = Some(depths);
        self
    }

    /// The validated query description (attributes, weights, `k`).
    pub fn spec(&self) -> &TopKQuery {
        &self.spec
    }

    /// How the processing variant is chosen.
    pub fn variant(&self) -> VariantChoice {
        self.variant
    }

    /// The optional cap on scanned depths.
    pub fn max_depth(&self) -> Option<usize> {
        self.max_depth
    }

    /// Re-validate the query against a relation with `num_attributes` columns (the
    /// session-side check; the builder cannot know the outsourced width).  Also guards
    /// the policy rules for queries assembled without the builder
    /// ([`Query::from_spec`] + [`Query::with_variant`]), so every execution path
    /// enforces the same contract.
    pub fn validate_for(&self, num_attributes: usize) -> Result<()> {
        self.spec.validate(num_attributes)?;
        if let VariantChoice::Fixed(QueryVariant::Batched { p: 0 }) = self.variant {
            return Err(QueryError::ZeroBatchParameter.into());
        }
        Ok(())
    }

    /// The [`QueryConfig`] this query runs under once `variant` has been planned or
    /// fixed.
    pub fn config_with(&self, variant: QueryVariant) -> QueryConfig {
        QueryConfig { variant, max_depth: self.max_depth }
    }
}

impl From<TopKQuery> for Query {
    fn from(spec: TopKQuery) -> Self {
        Query::from_spec(spec)
    }
}

/// Fluent builder for a [`Query`]; created by [`Query::top_k`].
#[derive(Clone, Debug)]
pub struct QueryBuilder {
    k: usize,
    attributes: AttrSel,
    weights: Vec<Score>,
    variant: VariantChoice,
    max_depth: Option<usize>,
}

impl QueryBuilder {
    /// Score by these attribute *names* (resolved against a schema in
    /// [`QueryBuilder::resolve`]).
    pub fn attributes<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.attributes = AttrSel::Names(names.into_iter().map(Into::into).collect());
        self
    }

    /// Score by these logical attribute *indices*.
    pub fn attribute_indices<I>(mut self, indices: I) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        self.attributes = AttrSel::Indices(indices.into_iter().collect());
        self
    }

    /// Weight the chosen attributes (one weight per attribute; omit for a plain sum).
    pub fn weights<I>(mut self, weights: I) -> Self
    where
        I: IntoIterator<Item = Score>,
    {
        self.weights = weights.into_iter().collect();
        self
    }

    /// Choose the processing variant ([`VariantChoice::Auto`] is the default).
    pub fn variant(mut self, variant: VariantChoice) -> Self {
        self.variant = variant;
        self
    }

    /// Cap the scan at `depths` depths (benchmark harnesses use this to measure
    /// time-per-depth without running a large relation to completion).
    pub fn max_depth(mut self, depths: usize) -> Self {
        self.max_depth = Some(depths);
        self
    }

    /// Validate and finish the query.  Attribute *names* cannot be resolved here — use
    /// [`QueryBuilder::resolve`] with the relation schema for those.
    pub fn build(self) -> Result<Query> {
        let indices = match self.attributes {
            AttrSel::Unset => return Err(QueryError::NoAttributes.into()),
            AttrSel::Indices(indices) => indices,
            AttrSel::Names(_) => return Err(QueryError::NamesRequireSchema.into()),
        };
        Self::finish(indices, self.weights, self.k, self.variant, self.max_depth)
    }

    /// Resolve attribute names against `schema` (index selections pass through
    /// unchanged), then validate and finish the query.
    pub fn resolve(self, schema: &Relation) -> Result<Query> {
        let indices = match self.attributes {
            AttrSel::Unset => return Err(QueryError::NoAttributes.into()),
            AttrSel::Indices(indices) => indices,
            AttrSel::Names(names) => names
                .into_iter()
                .map(|name| {
                    schema.attribute_index(&name).ok_or(QueryError::UnknownAttribute { name })
                })
                .collect::<std::result::Result<Vec<usize>, QueryError>>()?,
        };
        let query = Self::finish(indices, self.weights, self.k, self.variant, self.max_depth)?;
        query.validate_for(schema.num_attributes())?;
        Ok(query)
    }

    /// Shared validation tail: builds the `TopKQuery` and runs every check that does
    /// not need the relation width.
    fn finish(
        indices: Vec<usize>,
        weights: Vec<Score>,
        k: usize,
        variant: VariantChoice,
        max_depth: Option<usize>,
    ) -> Result<Query> {
        let spec = TopKQuery { attributes: indices, weights, k };
        // Validate the width-independent rules with a width that admits every index.
        let width = spec.attributes.iter().max().map_or(1, |&max| max + 1);
        spec.validate(width)?;
        if let VariantChoice::Fixed(QueryVariant::Batched { p: 0 }) = variant {
            return Err(QueryError::ZeroBatchParameter.into());
        }
        Ok(Query { spec, variant, max_depth })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SecTopKError;
    use sectopk_storage::{ObjectId, Row};

    fn schema() -> Relation {
        Relation::new(
            vec!["price".into(), "rating".into(), "freshness".into()],
            vec![Row { id: ObjectId(1), values: vec![1, 2, 3] }],
        )
    }

    #[test]
    fn builds_by_index_and_by_name() {
        let by_index = Query::top_k(2).attribute_indices([1, 2]).build().unwrap();
        let by_name =
            Query::top_k(2).attributes(["rating", "freshness"]).resolve(&schema()).unwrap();
        assert_eq!(by_index.spec(), by_name.spec());
        assert_eq!(by_index.spec().k, 2);
        assert_eq!(by_index.spec().attributes, vec![1, 2]);
        assert_eq!(by_index.variant(), VariantChoice::Auto);
    }

    #[test]
    fn weights_variant_and_depth_cap_flow_through() {
        let q = Query::top_k(3)
            .attribute_indices([0, 2])
            .weights([2, 5])
            .variant(VariantChoice::Fixed(QueryVariant::DupElim))
            .max_depth(7)
            .build()
            .unwrap();
        assert_eq!(q.spec().weights, vec![2, 5]);
        assert_eq!(q.variant(), VariantChoice::Fixed(QueryVariant::DupElim));
        assert_eq!(q.max_depth(), Some(7));
        let config = q.config_with(QueryVariant::DupElim);
        assert_eq!(config.max_depth, Some(7));
    }

    #[test]
    fn invalid_queries_are_rejected_with_typed_errors() {
        let err = Query::top_k(1).build().unwrap_err();
        assert_eq!(err, SecTopKError::Query(QueryError::NoAttributes));

        let err = Query::top_k(0).attribute_indices([0]).build().unwrap_err();
        assert_eq!(err, SecTopKError::Query(QueryError::ZeroK));

        let err = Query::top_k(1).attribute_indices([0, 0]).build().unwrap_err();
        assert_eq!(err, SecTopKError::Query(QueryError::DuplicateAttribute { index: 0 }));

        let err = Query::top_k(1).attribute_indices([0, 1]).weights([9]).build().unwrap_err();
        assert!(matches!(err, SecTopKError::Query(QueryError::WeightArity { .. })));

        let err = Query::top_k(1).attributes(["price"]).build().unwrap_err();
        assert_eq!(err, SecTopKError::Query(QueryError::NamesRequireSchema));

        let err = Query::top_k(1).attributes(["missing"]).resolve(&schema()).unwrap_err();
        assert!(matches!(err, SecTopKError::Query(QueryError::UnknownAttribute { .. })));

        let err = Query::top_k(1)
            .attribute_indices([0])
            .variant(VariantChoice::Fixed(QueryVariant::Batched { p: 0 }))
            .build()
            .unwrap_err();
        assert_eq!(err, SecTopKError::Query(QueryError::ZeroBatchParameter));
    }

    #[test]
    fn session_side_width_check_catches_out_of_range_indices() {
        let q = Query::top_k(1).attribute_indices([4]).build().unwrap();
        assert!(q.validate_for(5).is_ok());
        let err = q.validate_for(3).unwrap_err();
        assert!(matches!(
            err,
            SecTopKError::Query(QueryError::AttributeOutOfRange { index: 4, .. })
        ));
    }

    #[test]
    fn with_variant_cannot_smuggle_a_zero_batch_parameter_past_validation() {
        // `from_spec` + `with_variant` skips the builder, but the session-side
        // validation every execution path runs still enforces the policy rules.
        let q = Query::from_spec(sectopk_storage::TopKQuery::sum(vec![0], 1))
            .with_variant(VariantChoice::Fixed(QueryVariant::Batched { p: 0 }));
        assert_eq!(
            q.validate_for(3).unwrap_err(),
            SecTopKError::Query(QueryError::ZeroBatchParameter)
        );
    }

    #[test]
    fn workload_specs_wrap_into_auto_queries() {
        let q: Query = TopKQuery::sum(vec![0, 1], 2).into();
        assert_eq!(q.variant(), VariantChoice::Auto);
        assert!(q.max_depth().is_none());
        let pinned = q.with_variant(VariantChoice::Fixed(QueryVariant::Full)).with_max_depth(3);
        assert_eq!(pinned.max_depth(), Some(3));
    }
}
