//! The unified error model of the SecTopK facade.
//!
//! Every fallible operation on the public surface — building a query, generating a
//! token, executing `SecQuery` through a [`crate::Session`], resolving results — returns
//! [`SecTopKError`], which folds the layer-specific error types into one enum:
//!
//! | Layer | Wrapped type | Typical cause |
//! |---|---|---|
//! | query / token | [`sectopk_storage::QueryError`] | invalid attribute set, `k = 0`, unresolved name |
//! | crypto substrate | [`sectopk_crypto::CryptoError`] | corrupted ciphertext, key too small |
//! | two-cloud protocol | [`sectopk_protocols::ProtocolError`] | S2 error frame, dead transport |
//!
//! `From` impls keep `?` working across the layers, and the structured
//! [`WireError`](sectopk_protocols::WireError) inside
//! [`ProtocolError::Remote`] survives the trip
//! so serving layers can count failure classes without parsing strings.

use std::fmt;

use sectopk_crypto::CryptoError;
use sectopk_protocols::ProtocolError;
use sectopk_storage::QueryError;

/// An error from the SecTopK scheme facade.
#[derive(Clone, Debug, PartialEq)]
pub enum SecTopKError {
    /// The query is invalid (builder validation, token generation, schema resolution).
    Query(QueryError),
    /// A local cryptographic operation failed (key generation, encryption, resolution).
    Crypto(CryptoError),
    /// The two-cloud protocol failed — including typed S2 error frames and transport
    /// breakdowns.
    Protocol(ProtocolError),
    /// The inputs to a query execution disagree structurally (e.g. a token minted for a
    /// different relation width than the encrypted relation being queried).
    Malformed(String),
}

impl SecTopKError {
    /// Build a [`SecTopKError::Malformed`] from anything displayable.
    pub fn malformed(what: impl Into<String>) -> Self {
        SecTopKError::Malformed(what.into())
    }

    /// True when the failure is a client-side query mistake (fix the query and retry),
    /// as opposed to a crypto/protocol/infrastructure failure.
    pub fn is_invalid_query(&self) -> bool {
        matches!(self, SecTopKError::Query(_))
    }

    /// True when the remote cloud reported the failure over the wire (the local session
    /// and its transport are still usable).
    pub fn is_remote(&self) -> bool {
        matches!(self, SecTopKError::Protocol(p) if p.is_remote())
    }

    /// True when the failure is transient — a dead connection, a timeout, or a request
    /// shed under load — so retrying the same query (after the transport reconnects or
    /// the load subsides) can succeed.  Invalid queries, crypto failures and protocol
    /// violations are permanent: see
    /// [`ProtocolError::is_retryable`] for the underlying classification.
    pub fn is_transient(&self) -> bool {
        matches!(self, SecTopKError::Protocol(p) if p.is_retryable())
    }
}

impl fmt::Display for SecTopKError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecTopKError::Query(e) => write!(f, "invalid query: {e}"),
            SecTopKError::Crypto(e) => write!(f, "crypto failure: {e}"),
            SecTopKError::Protocol(e) => write!(f, "protocol failure: {e}"),
            SecTopKError::Malformed(what) => write!(f, "malformed input: {what}"),
        }
    }
}

impl std::error::Error for SecTopKError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SecTopKError::Query(e) => Some(e),
            SecTopKError::Crypto(e) => Some(e),
            SecTopKError::Protocol(e) => Some(e),
            SecTopKError::Malformed(_) => None,
        }
    }
}

impl From<QueryError> for SecTopKError {
    fn from(e: QueryError) -> Self {
        SecTopKError::Query(e)
    }
}

impl From<CryptoError> for SecTopKError {
    fn from(e: CryptoError) -> Self {
        SecTopKError::Crypto(e)
    }
}

impl From<ProtocolError> for SecTopKError {
    fn from(e: ProtocolError) -> Self {
        SecTopKError::Protocol(e)
    }
}

/// Result alias for the SecTopK facade.
pub type Result<T> = std::result::Result<T, SecTopKError>;

#[cfg(test)]
mod tests {
    use super::*;
    use sectopk_protocols::WireError;

    #[test]
    fn layers_convert_and_display() {
        let q: SecTopKError = QueryError::ZeroK.into();
        assert!(q.is_invalid_query());
        assert!(q.to_string().contains("invalid query"));

        let c: SecTopKError = CryptoError::DecryptionFailed.into();
        assert!(!c.is_invalid_query());
        assert!(c.to_string().contains("crypto failure"));

        let remote: SecTopKError = ProtocolError::Remote(WireError::malformed("arity")).into();
        assert!(remote.is_remote());
        assert!(remote.to_string().contains("arity"));

        let transport: SecTopKError = ProtocolError::transport("gone").into();
        assert!(!transport.is_remote());

        // Transience follows the protocol layer's typed classification.
        let dead: SecTopKError = ProtocolError::transport_io("socket reset").into();
        assert!(dead.is_transient());
        let shed: SecTopKError = ProtocolError::Remote(WireError::overloaded("full")).into();
        assert!(shed.is_transient());
        assert!(!transport.is_transient(), "protocol violations are permanent");
        assert!(!q.is_transient(), "invalid queries are permanent");

        assert!(SecTopKError::malformed("token/relation mismatch")
            .to_string()
            .contains("malformed input"));
    }

    #[test]
    fn sources_chain_down_to_the_layer_error() {
        use std::error::Error;
        let e: SecTopKError = ProtocolError::from(CryptoError::NotInvertible).into();
        let source = e.source().expect("protocol source");
        assert!(source.source().is_some(), "crypto error below the protocol error");
    }
}
