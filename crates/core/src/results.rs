//! Owner/client-side interpretation of encrypted query results.
//!
//! SecQuery returns encrypted items `(EHL(o), Enc(W), Enc(B))`.  The clouds never learn
//! which objects these are; the party holding the secret keys (the data owner, or a
//! client that the owner authorised for decryption) identifies them by re-encoding
//! candidate object ids under the EHL keys and testing equality, and decrypts the bound
//! ciphertexts directly.  This mirrors the paper's deployment, where the client takes the
//! encrypted answers back to the key holder (or fetches the matching records via ORAM,
//! §4).

use num_bigint::BigInt;
use rand::{CryptoRng, RngCore};

use sectopk_crypto::keys::MasterKeys;
use sectopk_ehl::EhlEncoder;
use sectopk_protocols::ScoredItem;
use sectopk_storage::ObjectId;

use crate::error::Result;

/// A decrypted query answer: the object and the worst/best bounds the protocol reported
/// for it at halting time (signed: neutralised placeholder entries decode to −1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolvedResult {
    /// The identified object, or `None` for a neutralised placeholder entry (these can
    /// only reach the top-k when the relation has fewer than `k` distinct objects).
    pub object: Option<ObjectId>,
    /// Lower bound (worst score) at halting time.
    pub worst: i64,
    /// Upper bound (best score) at halting time.
    pub best: i64,
}

/// Identify and decrypt every item of a query result using the data owner's keys.
///
/// `candidates` is the universe of object ids the owner knows about (all row ids of the
/// outsourced relation).  Identification costs one EHL encoding and one equality test per
/// candidate per result item — an owner-side, non-interactive computation.
pub fn resolve_results<R: RngCore + CryptoRng>(
    items: &[ScoredItem],
    candidates: &[ObjectId],
    keys: &MasterKeys,
    rng: &mut R,
) -> Result<Vec<ResolvedResult>> {
    let encoder = EhlEncoder::new(&keys.ehl_keys);
    let pk = &keys.paillier_public;
    let sk = &keys.paillier_secret;

    // Pre-encode every candidate once (k result items all compare against the same set).
    let encoded: Vec<(ObjectId, sectopk_ehl::EhlPlus)> = candidates
        .iter()
        .map(|&id| Ok((id, encoder.encode(&id.to_bytes(), pk, rng)?)))
        .collect::<sectopk_crypto::Result<Vec<_>>>()?;

    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let mut object = None;
        for (id, cand) in &encoded {
            if sk.is_zero(&item.ehl.eq_test(cand, pk, rng))? {
                object = Some(*id);
                break;
            }
        }
        let worst = signed_to_i64(&sk.decrypt_signed(&item.worst)?);
        let best = signed_to_i64(&sk.decrypt_signed(&item.best)?);
        out.push(ResolvedResult { object, worst, best });
    }
    Ok(out)
}

/// Convenience: just the identified object ids, in result order, skipping placeholders.
pub fn resolved_object_ids(results: &[ResolvedResult]) -> Vec<ObjectId> {
    results.iter().filter_map(|r| r.object).collect()
}

fn signed_to_i64(v: &BigInt) -> i64 {
    i64::try_from(v.clone()).unwrap_or(if v < &BigInt::from(0) { i64::MIN } else { i64::MAX })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::paillier::MIN_MODULUS_BITS;

    #[test]
    fn resolves_known_objects_and_flags_placeholders() {
        let mut rng = StdRng::seed_from_u64(2);
        let keys = MasterKeys::generate(MIN_MODULUS_BITS, 3, &mut rng).unwrap();
        let encoder = EhlEncoder::new(&keys.ehl_keys);
        let pk = &keys.paillier_public;

        let real = ScoredItem {
            ehl: encoder.encode(&ObjectId(7).to_bytes(), pk, &mut rng).unwrap(),
            worst: pk.encrypt_u64(18, &mut rng).unwrap(),
            best: pk.encrypt_u64(18, &mut rng).unwrap(),
        };
        let placeholder = ScoredItem {
            ehl: encoder.encode(b"garbage-not-an-id", pk, &mut rng).unwrap(),
            worst: pk.encrypt(&pk.sentinel_z(), &mut rng).unwrap(),
            best: pk.encrypt(&pk.sentinel_z(), &mut rng).unwrap(),
        };

        let candidates: Vec<ObjectId> = (0..10).map(ObjectId).collect();
        let resolved = resolve_results(&[real, placeholder], &candidates, &keys, &mut rng).unwrap();
        assert_eq!(resolved[0].object, Some(ObjectId(7)));
        assert_eq!(resolved[0].worst, 18);
        assert_eq!(resolved[1].object, None);
        assert_eq!(resolved[1].worst, -1);
        assert_eq!(resolved_object_ids(&resolved), vec![ObjectId(7)]);
    }

    #[test]
    fn out_of_range_bounds_saturate() {
        assert_eq!(signed_to_i64(&BigInt::from(5)), 5);
        assert_eq!(signed_to_i64(&BigInt::from(-5)), -5);
        let huge = BigInt::from(u128::MAX);
        assert_eq!(signed_to_i64(&huge), i64::MAX);
        assert_eq!(signed_to_i64(&-huge), i64::MIN);
    }
}
