//! `SecQuery` — the secure top-k query processing loop of Algorithm 3, in its three
//! evaluated flavours:
//!
//! * [`QueryVariant::Full`]   — `Qry_F`: full privacy; the per-depth duplicates are
//!   neutralised in place (SecDedup) and the global list `T` grows by `m` items per
//!   depth, so S1 never learns how many distinct objects it has seen.
//! * [`QueryVariant::DupElim`] — `Qry_E` (§10.1): duplicates are eliminated (SecDupElim),
//!   keeping `T` at the number of distinct objects at the cost of revealing the per-depth
//!   uniqueness pattern to S1.
//! * [`QueryVariant::Batched`] — `Qry_Ba` (§10.2): the expensive de-duplication, sorting
//!   and halting checks run only every `p` depths.
//!
//! The loop follows the paper: sorted access to the `m` token lists depth by depth,
//! `SecWorst` / `SecBest` for the per-depth bounds, `SecDedup`/`SecDupElim`, `SecUpdate`
//! into the global list, `EncSort` by worst score and an encrypted halting check.  The
//! halting check follows Algorithm 1's semantics (every object outside the current top-k
//! — seen or unseen — must be dominated), which is slightly stronger than the
//! `W_k ≥ B_{k+1}` shortcut written in Algorithm 3; see DESIGN.md.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use sectopk_crypto::paillier::Ciphertext;
use sectopk_protocols::{ChannelMetrics, LeakageEvent, ScoredItem, TwoClouds, UpdateMode};
use sectopk_storage::{EncryptedItem, EncryptedRelation, QueryToken};

use crate::error::{Result, SecTopKError};
use crate::planner::PlanDecision;

/// Which processing variant to run (§11.2.1 names them Qry_F, Qry_E and Qry_Ba).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryVariant {
    /// `Qry_F`: full privacy, no optimisation.
    Full,
    /// `Qry_E`: eliminate duplicates with SecDupElim at every depth.
    DupElim,
    /// `Qry_Ba`: batch the de-duplication / sorting / halting check every `p` depths.
    Batched {
        /// The batching parameter `p` (the paper suggests `p ≥ k`).
        p: usize,
    },
}

impl QueryVariant {
    /// Human-readable name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            QueryVariant::Full => "Qry_F",
            QueryVariant::DupElim => "Qry_E",
            QueryVariant::Batched { .. } => "Qry_Ba",
        }
    }
}

/// Configuration of one secure query execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryConfig {
    /// Processing variant.
    pub variant: QueryVariant,
    /// Optional hard cap on the number of depths scanned (used by the benchmark harness
    /// to measure time-per-depth without running a large relation to completion).  The
    /// query still returns its current top-k estimate when the cap is hit.
    pub max_depth: Option<usize>,
}

impl QueryConfig {
    /// Full-privacy configuration.
    pub fn full() -> Self {
        QueryConfig { variant: QueryVariant::Full, max_depth: None }
    }

    /// SecDupElim-optimised configuration.
    pub fn dup_elim() -> Self {
        QueryConfig { variant: QueryVariant::DupElim, max_depth: None }
    }

    /// Batched configuration with parameter `p`.
    pub fn batched(p: usize) -> Self {
        assert!(p >= 1, "batching parameter must be at least 1");
        QueryConfig { variant: QueryVariant::Batched { p }, max_depth: None }
    }

    /// Limit the scan to at most `depths` depths.
    pub fn with_max_depth(mut self, depths: usize) -> Self {
        self.max_depth = Some(depths);
        self
    }
}

/// Statistics of one query execution (feeds Figs. 9–13 and Table 3).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct QueryStats {
    /// Number of depths scanned (= halting depth unless the scan was capped).
    pub depths_scanned: usize,
    /// Whether the NRA halting condition was reached (false if the depth cap stopped us
    /// or the whole relation was scanned without the condition holding).
    pub halted: bool,
    /// Wall-clock seconds per scanned depth.
    pub per_depth_seconds: Vec<f64>,
    /// Channel traffic attributed to each scanned depth.
    pub per_depth_channel: Vec<ChannelMetrics>,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
    /// Total channel traffic of the query.
    pub channel: ChannelMetrics,
    /// Number of halting checks executed.
    pub halting_checks: usize,
    /// Size of the tracked list `T` when the query finished.
    pub final_tracked_len: usize,
    /// The variant decision this execution ran under (set by the `Session` facade:
    /// `auto: true` when the planner chose, `auto: false` when the caller fixed the
    /// variant).  `None` for direct `sec_query` calls.
    pub plan: Option<PlanDecision>,
}

impl QueryStats {
    /// Average wall-clock seconds per depth (the paper's headline metric, §11.2.1).
    pub fn seconds_per_depth(&self) -> f64 {
        if self.depths_scanned == 0 {
            0.0
        } else {
            self.total_seconds / self.depths_scanned as f64
        }
    }

    /// Average bytes exchanged per depth (Fig. 13a).
    pub fn bytes_per_depth(&self) -> f64 {
        if self.depths_scanned == 0 {
            0.0
        } else {
            self.channel.bytes as f64 / self.depths_scanned as f64
        }
    }
}

/// The result of a secure top-k query: the encrypted top-k items (object encodings plus
/// their encrypted bounds) and the execution statistics.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The (at most) k encrypted result items, ordered by decreasing worst score.
    pub top_k: Vec<ScoredItem>,
    /// Execution statistics.
    pub stats: QueryStats,
}

/// Execute a secure top-k query over the encrypted relation `er` with `token`.
///
/// The call drives both clouds of `clouds`; the communication and leakage they accrue is
/// recorded in `clouds.channel` and the per-party ledgers (the caller may want to
/// [`TwoClouds::reset_accounting`] first).
pub fn sec_query(
    clouds: &mut TwoClouds,
    er: &EncryptedRelation,
    token: &QueryToken,
    config: &QueryConfig,
) -> Result<QueryOutcome> {
    let started = Instant::now();
    let pk = clouds.pk().clone();
    let m = token.num_attributes();
    let k = token.k.max(1);
    let n = er.num_objects();
    if m == 0 {
        return Err(SecTopKError::malformed("token must name at least one list"));
    }
    if let Some(&bad) = token.permuted_lists.iter().find(|&&l| l >= er.num_attributes()) {
        return Err(SecTopKError::malformed(format!(
            "token names list {bad}, but the encrypted relation has only {} lists \
             (was the token minted for a different relation?)",
            er.num_attributes()
        )));
    }

    // The query pattern leakage: S1 learns that (and which) token was issued.
    let fingerprint = token_fingerprint(token);
    clouds.s1.ledger.record(LeakageEvent::QueryIssued { token_fingerprint: fingerprint });

    let (update_mode, check_every) = match config.variant {
        QueryVariant::Full => (UpdateMode::KeepLength, 1usize),
        QueryVariant::DupElim => (UpdateMode::Eliminate, 1usize),
        QueryVariant::Batched { p } => (UpdateMode::Eliminate, p.max(1)),
    };
    let max_depth = config.max_depth.unwrap_or(n).min(n);

    // Per-list state: the items seen so far (needed by SecBest) with weights applied.
    let mut seen: Vec<Vec<EncryptedItem>> = vec![Vec::new(); m];
    // The global tracked list T^d.
    let mut tracked: Vec<ScoredItem> = Vec::new();
    // In batched mode, the within-batch accumulator.
    let mut batch_tracked: Vec<ScoredItem> = Vec::new();

    let mut stats = QueryStats::default();
    let mut halted = false;

    for depth in 0..max_depth {
        let depth_started = Instant::now();
        let channel_before = clouds.channel();

        // ---- Sorted access: the item of every token list at this depth (weights applied
        //      homomorphically as §7 prescribes). -----------------------------------------
        let mut depth_items: Vec<EncryptedItem> = Vec::with_capacity(m);
        for (j, &list_idx) in token.permuted_lists.iter().enumerate() {
            let raw = er
                .list(list_idx)
                .item(depth)
                .ok_or_else(|| {
                    SecTopKError::malformed(format!(
                        "encrypted list {list_idx} is shorter than the relation size {n}"
                    ))
                })?
                .clone();
            let weighted_score = if token.weight(j) == 1 {
                raw.score.clone()
            } else {
                clouds.apply_weight(&raw.score, token.weight(j))
            };
            let item = EncryptedItem { ehl: raw.ehl, score: weighted_score };
            seen[j].push(item.clone());
            depth_items.push(item);
        }

        // ---- SecWorst / SecBest for the current depth (Algorithm 3 lines 5-6). ----------
        let worsts = clouds.sec_worst_depth(&depth_items, depth)?;
        let bests = clouds.sec_best_depth(&depth_items, &seen, depth)?;
        let gamma: Vec<ScoredItem> = depth_items
            .iter()
            .zip(worsts.into_iter().zip(bests))
            .map(|(item, (worst, best))| ScoredItem { ehl: item.ehl.clone(), worst, best })
            .collect();

        // ---- Per-depth de-duplication (Algorithm 3 line 7). ------------------------------
        let gamma = match config.variant {
            QueryVariant::Full => clouds.sec_dedup(gamma, depth)?,
            _ => clouds.sec_dup_elim(gamma, depth)?,
        };

        // ---- SecUpdate into the global (or batch) list (Algorithm 3 line 8). -------------
        match config.variant {
            QueryVariant::Batched { .. } => {
                batch_tracked =
                    clouds.sec_update(batch_tracked, &gamma, depth, UpdateMode::Eliminate)?;
            }
            _ => {
                tracked = clouds.sec_update(tracked, &gamma, depth, update_mode)?;
            }
        }

        // ---- Halting check every `check_every` depths (Algorithm 3 lines 9-12). ----------
        let is_check_depth = (depth + 1) % check_every == 0 || depth + 1 == max_depth;
        if is_check_depth {
            if let QueryVariant::Batched { .. } = config.variant {
                if !batch_tracked.is_empty() {
                    tracked =
                        clouds.sec_update(tracked, &batch_tracked, depth, UpdateMode::Eliminate)?;
                    batch_tracked = Vec::new();
                }
            }

            tracked = clouds.enc_sort_by_worst_desc(tracked)?;
            stats.halting_checks += 1;

            if tracked.len() >= k {
                let w_k = tracked[k - 1].worst.clone();

                // Candidates that must be dominated: the best score of every tracked item
                // outside the current top-k, plus the upper bound of any still-unseen
                // object (the sum of the current bottom scores of the scanned lists).
                let mut candidate_bests: Vec<Ciphertext> =
                    tracked[k..].iter().map(|it| it.best.clone()).collect();
                let bottoms: Vec<Ciphertext> = seen
                    .iter()
                    .map(|l| l.last().expect("scanned at least one depth").score.clone())
                    .collect();
                candidate_bests.push(clouds.sum_ciphertexts(&bottoms));

                let dominated =
                    clouds.batch_compare_leq(&candidate_bests, &w_k, "halting_check")?;
                if dominated.iter().all(|&d| d) {
                    halted = true;
                }
            }
        }

        let depth_channel = clouds.channel().since(&channel_before);
        stats.per_depth_channel.push(depth_channel);
        stats.per_depth_seconds.push(depth_started.elapsed().as_secs_f64());
        stats.depths_scanned = depth + 1;

        if halted {
            clouds.s1.ledger.record(LeakageEvent::HaltingDepth(depth + 1));
            break;
        }
    }

    // If we stopped because of the cap (or scanned everything) the list may not be sorted
    // or may still hold an unmerged batch; finish the bookkeeping so the result is the
    // best current estimate.
    if !halted {
        if !batch_tracked.is_empty() {
            tracked = clouds.sec_update(
                tracked,
                &batch_tracked,
                stats.depths_scanned.saturating_sub(1),
                UpdateMode::Eliminate,
            )?;
        }
        tracked = clouds.enc_sort_by_worst_desc(tracked)?;
        clouds.s1.ledger.record(LeakageEvent::HaltingDepth(stats.depths_scanned));
    }

    let top_k: Vec<ScoredItem> = tracked.iter().take(k).cloned().collect();

    stats.halted = halted;
    stats.final_tracked_len = tracked.len();
    stats.total_seconds = started.elapsed().as_secs_f64();
    stats.channel = clouds.channel();
    let _ = pk;

    Ok(QueryOutcome { top_k, stats })
}

/// A stable fingerprint of a token, modelling the query-pattern leakage `QP` (S1 can
/// always tell repeated tokens apart from new ones).
fn token_fingerprint(token: &QueryToken) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    token.permuted_lists.hash(&mut h);
    token.weights.hash(&mut h);
    token.k.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors() {
        assert_eq!(QueryConfig::full().variant, QueryVariant::Full);
        assert_eq!(QueryConfig::dup_elim().variant, QueryVariant::DupElim);
        assert_eq!(QueryConfig::batched(5).variant, QueryVariant::Batched { p: 5 });
        let capped = QueryConfig::full().with_max_depth(7);
        assert_eq!(capped.max_depth, Some(7));
        assert_eq!(QueryVariant::Full.name(), "Qry_F");
        assert_eq!(QueryVariant::DupElim.name(), "Qry_E");
        assert_eq!(QueryVariant::Batched { p: 3 }.name(), "Qry_Ba");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_batching_parameter_is_rejected() {
        let _ = QueryConfig::batched(0);
    }

    #[test]
    fn stats_averages() {
        let mut stats = QueryStats::default();
        assert_eq!(stats.seconds_per_depth(), 0.0);
        stats.depths_scanned = 4;
        stats.total_seconds = 2.0;
        stats.channel.bytes = 400;
        assert!((stats.seconds_per_depth() - 0.5).abs() < 1e-12);
        assert!((stats.bytes_per_depth() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn fingerprints_distinguish_tokens() {
        let a = QueryToken { permuted_lists: vec![1, 2], weights: vec![], k: 3 };
        let b = QueryToken { permuted_lists: vec![1, 2], weights: vec![], k: 4 };
        assert_eq!(token_fingerprint(&a), token_fingerprint(&a));
        assert_ne!(token_fingerprint(&a), token_fingerprint(&b));
    }
}
