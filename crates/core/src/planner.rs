//! The adaptive variant planner: the §11 cost model as code.
//!
//! The paper evaluates three processing variants that trade privacy for speed
//! (§10, §11.2): `Qry_F` (full privacy, the tracked list grows by `m` every depth),
//! `Qry_E` (SecDupElim keeps only distinct objects, leaking the per-depth uniqueness
//! pattern `UP^d` to S1) and `Qry_Ba` (the expensive de-duplication / sorting / halting
//! machinery runs only every `p` depths, diluting `UP^d` further).  Picking the variant
//! and the batching parameter `p` by hand is exactly the kind of knob a serving-grade
//! API must not expose, so [`plan`] chooses them from the query shape:
//!
//! 1. **Estimate the scan depth** `D` from `n` and `k` (NRA-style scans halt after a
//!    sublinear prefix of the lists; the paper's §11.2.1 runs scan hundreds of depths on
//!    10⁵–10⁶-row datasets).
//! 2. **Estimate each variant's total cost** in abstract ciphertext-operation units by
//!    walking the per-depth recurrence of Algorithm 3: SecWorst/SecBest (`m²`-ish per
//!    depth plus the seen-list sweep), SecUpdate against the tracked list, `EncSort` as
//!    a Batcher network (`t·log²t` gates) and the halting comparison, plus a per-round
//!    latency term when the inter-cloud link has a nonzero RTT (§11.2.5).
//! 3. **Prefer privacy subject to a budget**: `Qry_F` whenever its estimated cost fits
//!    [`FULL_PRIVACY_BUDGET`], `Qry_E` while it fits [`DUP_ELIM_BUDGET`], and otherwise
//!    `Qry_Ba` with the cost-minimising `p` from a geometric candidate sweep (the paper
//!    suggests `p ≥ k`; the sweep never goes below that).
//!
//! The decision is recorded in [`crate::QueryStats::plan`], so every bench run and
//! `ServeReport` is self-describing about what the planner did.

use serde::{Deserialize, Serialize};

use crate::query::QueryVariant;

/// Cost (in abstract units) below which full privacy (`Qry_F`) is considered
/// affordable.  Calibrated so the paper's worked examples and the test relations
/// (tens to a few hundred rows) stay on the maximally private path.
pub const FULL_PRIVACY_BUDGET: f64 = 50_000.0;

/// Cost budget for `Qry_E`: above this, the planner reaches for batching.
pub const DUP_ELIM_BUDGET: f64 = 500_000.0;

/// How many cost units one millisecond of link RTT is worth.  Converts the per-round
/// latency of the §11.2.5 WAN into the same units as the ciphertext-operation counts
/// (one unit ≈ one modular exponentiation ≈ tens of microseconds at 256-bit keys).
const RTT_UNITS_PER_MS: f64 = 25.0;

/// Fraction of per-depth items that are new *distinct* objects under `Qry_E` (objects
/// recur across the `m` lists as the scan deepens, so the distinct count grows slower
/// than `m·d`).
const DISTINCT_FRACTION: f64 = 2.0 / 3.0;

/// The query-shape inputs the planner decides from.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlannerInputs {
    /// Relation size `n = |R|`.
    pub n: usize,
    /// Number of scoring attributes `m` of the query.
    pub m: usize,
    /// Number of requested results `k`.
    pub k: usize,
    /// Round-trip time of the inter-cloud link in milliseconds (0 for an ideal link).
    pub rtt_ms: f64,
    /// Whether round-trip batching is enabled on the transport.
    pub batching: bool,
}

impl PlannerInputs {
    /// Bundle the planner inputs.
    pub fn new(n: usize, m: usize, k: usize, rtt_ms: f64, batching: bool) -> Self {
        PlannerInputs { n, m: m.max(1), k: k.max(1), rtt_ms, batching }
    }
}

/// Estimated total cost of each variant, in abstract ciphertext-operation units.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct VariantCosts {
    /// Estimated cost of `Qry_F`.
    pub full: f64,
    /// Estimated cost of `Qry_E`.
    pub dup_elim: f64,
    /// Estimated cost of `Qry_Ba` at the best candidate `p`.
    pub batched: f64,
    /// The batching parameter the `batched` estimate used.
    pub batched_p: usize,
}

/// The planner's decision for one query, recorded in [`crate::QueryStats`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanDecision {
    /// The chosen variant (with `p` filled in for `Qry_Ba`).
    pub variant: QueryVariant,
    /// `true` when the planner chose the variant (`variant(Auto)`); `false` when the
    /// caller fixed it and the costs are recorded for reference only.
    pub auto: bool,
    /// The inputs the decision was made from.
    pub inputs: PlannerInputs,
    /// The estimated halting depth `D` used by the cost model.
    pub estimated_depths: usize,
    /// The per-variant cost estimates behind the decision.
    pub costs: VariantCosts,
}

impl PlanDecision {
    /// The paper's name of the chosen variant (`Qry_F` / `Qry_E` / `Qry_Ba`).
    pub fn variant_name(&self) -> &'static str {
        self.variant.name()
    }

    /// The chosen batching parameter, when the decision is `Qry_Ba`.
    pub fn batching_parameter(&self) -> Option<usize> {
        match self.variant {
            QueryVariant::Batched { p } => Some(p),
            _ => None,
        }
    }
}

/// Estimated halting depth: `k` depths to fill the top-k plus a sublinear tail of the
/// lists (NRA halts once the unseen upper bound is dominated, which empirically happens
/// after an `O(n^0.6)`-ish prefix on the §11 score distributions).
pub fn estimated_depths(n: usize, k: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let tail = (n as f64).powf(0.6).ceil() as usize;
    (k + tail).clamp(1, n)
}

/// Gates of a Batcher odd-even merge sort over `t` items (the `EncSort` realisation):
/// `t · log²(t)` up to constants.
fn sort_cost(t: f64) -> f64 {
    if t <= 1.0 {
        return 0.0;
    }
    let log = (t + 2.0).log2();
    t * log * log
}

/// Per-check halting cost: one comparison per tracked item outside the top-k plus the
/// unseen-bound comparison.
fn halt_cost(t: f64) -> f64 {
    t + 1.0
}

/// Rounds one depth costs on the wire with batching enabled (sorted access is local;
/// SecWorst+SecBest, dedup, update, and — on check depths — sort plus halting check).
fn rounds_per_depth(batching: bool, m: f64) -> f64 {
    if batching {
        4.0
    } else {
        // Unbatched, every pairwise exchange is its own round trip.
        4.0 * m * m
    }
}

fn latency_units(rounds: f64, rtt_ms: f64) -> f64 {
    rounds * rtt_ms * RTT_UNITS_PER_MS
}

/// Cost of `Qry_F` over `depths` scanned depths: the tracked list `T` grows by `m`
/// every depth (duplicates are neutralised in place, never removed), and every depth
/// pays a full sort and halting check over it.
fn cost_full(inputs: &PlannerInputs, depths: usize) -> f64 {
    let m = inputs.m as f64;
    let mut cost = 0.0;
    let mut rounds = 0.0;
    for d in 1..=depths {
        let df = d as f64;
        let tracked = m * df;
        // SecWorst (m² eq tests) + SecBest (per list, the seen prefix sweep).
        cost += m * m + m * m * df.min(inputs.n as f64);
        // SecDedup over the per-depth items + SecUpdate against T + sort + halt.
        cost += m * m + m * tracked + sort_cost(tracked) + halt_cost(tracked);
        rounds += rounds_per_depth(inputs.batching, m) + 2.0;
    }
    cost + latency_units(rounds, inputs.rtt_ms)
}

/// Cost of `Qry_E`: like `Qry_F`, but the tracked list holds only distinct objects
/// (`≈ DISTINCT_FRACTION · m · d`, capped at `n`).
fn cost_dup_elim(inputs: &PlannerInputs, depths: usize) -> f64 {
    let m = inputs.m as f64;
    let n = inputs.n as f64;
    let mut cost = 0.0;
    let mut rounds = 0.0;
    for d in 1..=depths {
        let df = d as f64;
        let tracked = (DISTINCT_FRACTION * m * df).min(n);
        cost += m * m + m * m * df.min(n);
        cost += m * m + m * tracked + sort_cost(tracked) + halt_cost(tracked);
        rounds += rounds_per_depth(inputs.batching, m) + 2.0;
    }
    cost + latency_units(rounds, inputs.rtt_ms)
}

/// Cost of `Qry_Ba` with parameter `p`: between checks only the cheap within-batch
/// accumulator is maintained; every `p`-th depth pays the batch merge, the sort and the
/// halting check over the distinct tracked list.
fn cost_batched(inputs: &PlannerInputs, depths: usize, p: usize) -> f64 {
    let m = inputs.m as f64;
    let n = inputs.n as f64;
    let p = p.max(1);
    let mut cost = 0.0;
    let mut rounds = 0.0;
    for d in 1..=depths {
        let df = d as f64;
        let in_batch = (((d - 1) % p) + 1) as f64;
        cost += m * m + m * m * df.min(n); // SecWorst + SecBest
        cost += m * m + m * (m * in_batch); // per-depth dedup + batch update
        rounds += rounds_per_depth(inputs.batching, m);
        if d % p == 0 || d == depths {
            let tracked = (DISTINCT_FRACTION * m * df).min(n);
            cost += m * (p as f64) + m * tracked; // merge the batch into T
            cost += sort_cost(tracked) + halt_cost(tracked);
            rounds += 3.0;
        }
    }
    cost + latency_units(rounds, inputs.rtt_ms)
}

/// The geometric `p` candidates the planner sweeps: `max(2, k) · 2^i`, capped at the
/// estimated scan depth (the paper suggests `p ≥ k`).
fn p_candidates(k: usize, depths: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut p = k.max(2);
    let cap = depths.max(k.max(2));
    while p <= cap {
        out.push(p);
        p *= 2;
    }
    if out.is_empty() {
        out.push(k.max(2));
    }
    out
}

/// Run the cost model and pick the variant: the most private option whose estimated
/// cost fits its budget, falling back to `Qry_Ba` at the cost-minimising `p`.
pub fn plan(inputs: &PlannerInputs) -> PlanDecision {
    let depths = estimated_depths(inputs.n, inputs.k);
    let full = cost_full(inputs, depths);
    let dup_elim = cost_dup_elim(inputs, depths);
    let (batched_p, batched) = p_candidates(inputs.k, depths)
        .into_iter()
        .map(|p| (p, cost_batched(inputs, depths, p)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least one p candidate");

    let variant = if full <= FULL_PRIVACY_BUDGET {
        QueryVariant::Full
    } else if dup_elim <= DUP_ELIM_BUDGET {
        QueryVariant::DupElim
    } else {
        QueryVariant::Batched { p: batched_p }
    };
    PlanDecision {
        variant,
        auto: true,
        inputs: *inputs,
        estimated_depths: depths,
        costs: VariantCosts { full, dup_elim, batched, batched_p },
    }
}

/// Record the cost model's view of a *caller-fixed* variant choice (the `auto: false`
/// decision stored in [`crate::QueryStats`] when the builder pinned the variant).
pub fn record_fixed(inputs: &PlannerInputs, variant: QueryVariant) -> PlanDecision {
    let mut decision = plan(inputs);
    decision.variant = variant;
    decision.auto = false;
    decision
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal(n: usize, m: usize, k: usize) -> PlannerInputs {
        PlannerInputs::new(n, m, k, 0.0, true)
    }

    #[test]
    fn small_relations_stay_fully_private() {
        // The Fig. 3 worked example (n = 5) and test-sized relations afford Qry_F.
        for n in [5, 10, 50] {
            let decision = plan(&ideal(n, 3, 2));
            assert_eq!(decision.variant, QueryVariant::Full, "n = {n}");
            assert!(decision.auto);
        }
    }

    #[test]
    fn midsize_relations_pick_dup_elim() {
        let decision = plan(&ideal(1_000, 3, 5));
        assert_eq!(decision.variant, QueryVariant::DupElim);
        assert!(decision.costs.full > FULL_PRIVACY_BUDGET);
    }

    #[test]
    fn section_11_dataset_sizes_pick_batched_with_p_at_least_k() {
        // The §11.2.1 datasets: 10⁵ rows (insurance/forest-shaped) up to 10⁶ (synthetic).
        for n in [100_000, 500_000, 1_000_000] {
            let decision = plan(&ideal(n, 3, 5));
            match decision.variant {
                QueryVariant::Batched { p } => {
                    assert!(p >= 5, "p = {p} must be at least k");
                    assert_eq!(decision.batching_parameter(), Some(p));
                    assert_eq!(decision.variant_name(), "Qry_Ba");
                }
                other => panic!("n = {n}: expected Qry_Ba, planner chose {other:?}"),
            }
            assert!(decision.costs.batched <= decision.costs.dup_elim);
            assert!(decision.costs.dup_elim <= decision.costs.full);
        }
    }

    #[test]
    fn costs_are_monotone_in_the_relation_size() {
        let small = plan(&ideal(100, 3, 5));
        let large = plan(&ideal(10_000, 3, 5));
        assert!(large.costs.full > small.costs.full);
        assert!(large.estimated_depths > small.estimated_depths);
    }

    #[test]
    fn latency_raises_costs_and_never_shrinks_the_batching_parameter() {
        // A WAN RTT (§11.2.5) makes every round trip expensive: all estimates grow, and
        // the cost-minimising p can only move up (each extra depth in the batch saves
        // check rounds that now cost real wall-clock).
        let ideal_plan = plan(&ideal(100_000, 3, 5));
        let wan_plan = plan(&PlannerInputs::new(100_000, 3, 5, 20.0, true));
        assert!(wan_plan.costs.full > ideal_plan.costs.full);
        assert!(wan_plan.costs.dup_elim > ideal_plan.costs.dup_elim);
        assert!(wan_plan.costs.batched > ideal_plan.costs.batched);
        assert!(wan_plan.costs.batched_p >= ideal_plan.costs.batched_p);
    }

    #[test]
    fn estimated_depths_are_clamped_to_the_relation() {
        assert_eq!(estimated_depths(0, 3), 0);
        assert_eq!(estimated_depths(5, 3), 5);
        assert!(estimated_depths(100_000, 5) < 100_000);
        assert!(estimated_depths(100_000, 5) >= 5);
    }

    #[test]
    fn fixed_choices_are_recorded_with_auto_false() {
        let decision = record_fixed(&ideal(5, 3, 2), QueryVariant::DupElim);
        assert!(!decision.auto);
        assert_eq!(decision.variant, QueryVariant::DupElim);
        // The cost estimates are still those of the model, for reference.
        assert!(decision.costs.full > 0.0);
    }

    #[test]
    fn p_candidates_respect_k() {
        assert!(p_candidates(5, 1000).iter().all(|&p| p >= 5));
        assert!(!p_candidates(5, 3).is_empty());
    }
}
