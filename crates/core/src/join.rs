//! Secure top-k join over two encrypted relations (§12 of the paper).
//!
//! * [`encrypt_for_join`] — the `Enc(R1, R2)` procedure of Algorithm 10: every attribute
//!   value of every tuple becomes a `⟨EHL(value), Enc(value)⟩` pair and the attribute
//!   positions are permuted with a per-relation PRP.
//! * [`JoinQuery`] / [`join_token`] — the client-side SQL-like join description
//!   (`SELECT * FROM R1, R2 WHERE R1.A = R2.B ORDER BY R1.C + R2.D STOP AFTER k`) and the
//!   token that maps its attributes through the PRPs (§12.3).
//! * [`top_k_join`] — the `./sec` operator: `SecJoin`, then `SecFilter`, then an
//!   encrypted top-k selection on the joined scores (§12.4).

use rand::{CryptoRng, RngCore};
use serde::{Deserialize, Serialize};

use sectopk_crypto::keys::MasterKeys;
use sectopk_crypto::paillier::Ciphertext;
use sectopk_crypto::prf::PrfKey;
use sectopk_crypto::prp::KeyedPrp;
use sectopk_ehl::EhlEncoder;
use sectopk_protocols::{EncryptedTuple, JoinSpec, JoinedTuple, TwoClouds};
use sectopk_storage::{EncryptedItem, QueryError, Relation};

use crate::error::Result;

/// A relation encrypted for joining: one [`EncryptedTuple`] per row, attribute positions
/// permuted by the owner's PRP.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct JoinEncryptedRelation {
    /// The encrypted tuples.
    pub tuples: Vec<EncryptedTuple>,
    /// Number of attributes (after permutation — same count, permuted positions).
    pub num_attributes: usize,
}

impl JoinEncryptedRelation {
    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Total serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.tuples.iter().map(EncryptedTuple::byte_len).sum()
    }
}

/// Derive the per-relation PRP key used to permute attribute positions (`label` is the
/// relation's role, e.g. `"join/left"`).
fn relation_prp_key(keys: &MasterKeys, label: &str) -> PrfKey {
    keys.prp_key.derive(label.as_bytes())
}

/// `Enc(R_i)` for joins (Algorithm 10): encrypt every attribute value as
/// `⟨EHL(value), Enc(value)⟩` and permute the attribute positions.
pub fn encrypt_for_join<R: RngCore + CryptoRng>(
    relation: &Relation,
    keys: &MasterKeys,
    label: &str,
    rng: &mut R,
) -> Result<JoinEncryptedRelation> {
    let encoder = EhlEncoder::new(&keys.ehl_keys);
    let pk = &keys.paillier_public;
    let m = relation.num_attributes();
    let prp = KeyedPrp::new(&relation_prp_key(keys, label), m);

    let mut tuples = Vec::with_capacity(relation.len());
    for row in relation.rows() {
        let mut cells: Vec<Option<EncryptedItem>> = vec![None; m];
        for (attr, &value) in row.values.iter().enumerate() {
            let cell = EncryptedItem {
                ehl: encoder.encode(&value.to_be_bytes(), pk, rng)?,
                score: pk.encrypt_u64(value, rng)?,
            };
            cells[prp.apply(attr)] = Some(cell);
        }
        tuples.push(EncryptedTuple {
            cells: cells.into_iter().map(|c| c.expect("PRP is a bijection")).collect(),
        });
    }
    Ok(JoinEncryptedRelation { tuples, num_attributes: m })
}

/// A client-side top-k join query:
/// `SELECT * FROM R1, R2 WHERE R1.join_left = R2.join_right ORDER BY R1.score_left + R2.score_right STOP AFTER k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinQuery {
    /// Join attribute of the left relation (logical index).
    pub join_left: usize,
    /// Join attribute of the right relation (logical index).
    pub join_right: usize,
    /// Score attribute of the left relation (logical index).
    pub score_left: usize,
    /// Score attribute of the right relation (logical index).
    pub score_right: usize,
    /// Number of results requested.
    pub k: usize,
}

/// The token shipped to S1 for a top-k join: the PRP images of the four attributes plus
/// which attributes of each side to carry into the output, and `k`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinToken {
    /// The permuted join/score attribute positions.
    pub spec: JoinSpec,
    /// Permuted positions of the left attributes carried into the output.
    pub carry_left: Vec<usize>,
    /// Permuted positions of the right attributes carried into the output.
    pub carry_right: Vec<usize>,
    /// Number of results requested.
    pub k: usize,
}

/// Build the token for a join query (§12.3).  `carry_left` / `carry_right` name the
/// logical attributes whose values the client wants returned (e.g. all of them for
/// `SELECT *`).
pub fn join_token(
    keys: &MasterKeys,
    left_attributes: usize,
    right_attributes: usize,
    query: &JoinQuery,
    carry_left: &[usize],
    carry_right: &[usize],
) -> Result<JoinToken> {
    if query.k == 0 {
        return Err(QueryError::ZeroK.into());
    }
    for (&index, bound) in [
        (&query.join_left, left_attributes),
        (&query.score_left, left_attributes),
        (&query.join_right, right_attributes),
        (&query.score_right, right_attributes),
    ] {
        if index >= bound {
            return Err(QueryError::AttributeOutOfRange { index, num_attributes: bound }.into());
        }
    }
    let left_prp = KeyedPrp::new(&relation_prp_key(keys, "join/left"), left_attributes);
    let right_prp = KeyedPrp::new(&relation_prp_key(keys, "join/right"), right_attributes);
    Ok(JoinToken {
        spec: JoinSpec {
            left_key: left_prp.apply(query.join_left),
            right_key: right_prp.apply(query.join_right),
            left_score: left_prp.apply(query.score_left),
            right_score: right_prp.apply(query.score_right),
        },
        carry_left: carry_left.iter().map(|&a| left_prp.apply(a)).collect(),
        carry_right: carry_right.iter().map(|&a| right_prp.apply(a)).collect(),
        k: query.k,
    })
}

/// Outcome of a secure top-k join.
#[derive(Clone, Debug)]
pub struct JoinOutcome {
    /// The (at most) k joined tuples with the highest scores, best first, still encrypted.
    pub top_k: Vec<JoinedTuple>,
    /// Number of tuple pairs that satisfied the join condition.
    pub matching_pairs: usize,
    /// Total pairs considered (|R1| · |R2|).
    pub pairs_considered: usize,
}

/// The `./sec` operator (§12.4): join the two encrypted relations, filter the
/// non-matching combinations, and return the top-k joined tuples by encrypted score.
pub fn top_k_join(
    clouds: &mut TwoClouds,
    left: &JoinEncryptedRelation,
    right: &JoinEncryptedRelation,
    token: &JoinToken,
) -> Result<JoinOutcome> {
    let pairs_considered = left.len() * right.len();
    let joined = clouds.sec_join(
        &left.tuples,
        &right.tuples,
        &token.spec,
        &token.carry_left,
        &token.carry_right,
    )?;
    let filtered = clouds.sec_filter(joined)?;
    let matching_pairs = filtered.len();

    // Encrypted top-k selection on the joined scores: k rounds of "find the maximum of
    // the remaining tuples" driven by EncCompare.
    let k = token.k.min(filtered.len());
    let mut remaining = filtered;
    let mut top_k = Vec::with_capacity(k);
    for _ in 0..k {
        let mut best_idx = 0usize;
        for idx in 1..remaining.len() {
            // Is the current best ≤ the candidate?  Then the candidate becomes the best.
            let current_best: Ciphertext = remaining[best_idx].score.clone();
            let candidate = remaining[idx].score.clone();
            if clouds.enc_compare(&current_best, &candidate, "join_top_k")? {
                best_idx = idx;
            }
        }
        top_k.push(remaining.swap_remove(best_idx));
    }

    Ok(JoinOutcome { top_k, matching_pairs, pairs_considered })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sectopk_crypto::paillier::MIN_MODULUS_BITS;
    use sectopk_storage::{ObjectId, Row};

    fn setup() -> (MasterKeys, TwoClouds, StdRng) {
        let mut rng = StdRng::seed_from_u64(777);
        let keys = MasterKeys::generate(MIN_MODULUS_BITS, 3, &mut rng).unwrap();
        let clouds = TwoClouds::new(&keys, 7).unwrap();
        (keys, clouds, rng)
    }

    fn left_relation() -> Relation {
        // Attributes: (A = join key, C = score)
        Relation::new(
            vec!["A".into(), "C".into()],
            vec![
                Row { id: ObjectId(1), values: vec![1, 10] },
                Row { id: ObjectId(2), values: vec![2, 20] },
                Row { id: ObjectId(3), values: vec![3, 30] },
                Row { id: ObjectId(4), values: vec![2, 15] },
            ],
        )
    }

    fn right_relation() -> Relation {
        // Attributes: (B = join key, D = score)
        Relation::new(
            vec!["B".into(), "D".into()],
            vec![
                Row { id: ObjectId(1), values: vec![2, 5] },
                Row { id: ObjectId(2), values: vec![3, 7] },
                Row { id: ObjectId(3), values: vec![9, 100] },
            ],
        )
    }

    #[test]
    fn encryption_permutes_attributes_consistently() {
        let (keys, _clouds, mut rng) = setup();
        let left = encrypt_for_join(&left_relation(), &keys, "join/left", &mut rng).unwrap();
        assert_eq!(left.len(), 4);
        assert_eq!(left.num_attributes, 2);
        assert!(left.byte_len() > 0);
        // The stored cell at the PRP image of attribute 1 must decrypt to the score value.
        let prp = KeyedPrp::new(&relation_prp_key(&keys, "join/left"), 2);
        let pos = prp.apply(1);
        let v = keys.paillier_secret.decrypt_u64(&left.tuples[0].cells[pos].score).unwrap();
        assert_eq!(v, 10);
    }

    #[test]
    fn token_validates_and_maps_through_the_prp() {
        let (keys, _clouds, _rng) = setup();
        let q = JoinQuery { join_left: 0, join_right: 0, score_left: 1, score_right: 1, k: 2 };
        let token = join_token(&keys, 2, 2, &q, &[0, 1], &[1]).unwrap();
        assert_eq!(token.k, 2);
        assert_eq!(token.carry_left.len(), 2);
        // Out-of-range attributes and k = 0 are rejected.
        assert!(join_token(&keys, 2, 2, &JoinQuery { join_left: 9, ..q }, &[], &[]).is_err());
        assert!(join_token(&keys, 2, 2, &JoinQuery { k: 0, ..q }, &[], &[]).is_err());
    }

    #[test]
    fn top_k_join_returns_highest_scoring_matches() {
        let (keys, mut clouds, mut rng) = setup();
        let left = encrypt_for_join(&left_relation(), &keys, "join/left", &mut rng).unwrap();
        let right = encrypt_for_join(&right_relation(), &keys, "join/right", &mut rng).unwrap();
        let q = JoinQuery { join_left: 0, join_right: 0, score_left: 1, score_right: 1, k: 2 };
        let token = join_token(&keys, 2, 2, &q, &[1], &[1]).unwrap();

        let outcome = top_k_join(&mut clouds, &left, &right, &token).unwrap();
        assert_eq!(outcome.pairs_considered, 12);
        // Matches: A=2 rows (two of them, scores 20 and 15) with B=2 (5) → 25, 20;
        //          A=3 (30) with B=3 (7) → 37.
        assert_eq!(outcome.matching_pairs, 3);
        assert_eq!(outcome.top_k.len(), 2);
        let scores: Vec<u64> = outcome
            .top_k
            .iter()
            .map(|t| keys.paillier_secret.decrypt_u64(&t.score).unwrap())
            .collect();
        assert_eq!(scores, vec![37, 25]);
        // Carried attributes of the best tuple are C=30 and D=7.
        let attrs: Vec<u64> = outcome.top_k[0]
            .attributes
            .iter()
            .map(|a| keys.paillier_secret.decrypt_u64(a).unwrap())
            .collect();
        assert_eq!(attrs, vec![30, 7]);
    }

    #[test]
    fn join_with_no_matches_returns_nothing() {
        let (keys, mut clouds, mut rng) = setup();
        let left_rel = Relation::new(
            vec!["A".into(), "C".into()],
            vec![Row { id: ObjectId(1), values: vec![100, 1] }],
        );
        let left = encrypt_for_join(&left_rel, &keys, "join/left", &mut rng).unwrap();
        let right = encrypt_for_join(&right_relation(), &keys, "join/right", &mut rng).unwrap();
        let q = JoinQuery { join_left: 0, join_right: 0, score_left: 1, score_right: 1, k: 5 };
        let token = join_token(&keys, 2, 2, &q, &[], &[]).unwrap();
        let outcome = top_k_join(&mut clouds, &left, &right, &token).unwrap();
        assert_eq!(outcome.matching_pairs, 0);
        assert!(outcome.top_k.is_empty());
    }
}
