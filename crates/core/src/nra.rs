//! The plaintext No-Random-Access (NRA) algorithm of Fagin, Lotem and Naor (Algorithm 1
//! of the paper), used as the correctness oracle and as the algorithmic baseline whose
//! halting depth the secure protocol is compared against.
//!
//! NRA scans the `m` sorted attribute lists depth by depth, maintaining for every seen
//! object a lower bound `W^d(o)` (sum of its known scores) and an upper bound `B^d(o)`
//! (known scores plus the current "bottom" score of every list where the object has not
//! been seen yet).  It halts as soon as the `k` largest lower bounds dominate the upper
//! bound of every other object (and of any still-unseen object).

use std::collections::HashMap;

use sectopk_storage::{ObjectId, Relation, Score};

/// Outcome of a plaintext NRA run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NraOutcome {
    /// The top-k object ids with their lower-bound scores at halting time, best first.
    pub top_k: Vec<(ObjectId, u128)>,
    /// Number of depths scanned before the halting condition held (1-based; equals `n`
    /// if the algorithm had to scan the whole relation).
    pub halting_depth: usize,
}

/// Per-object bookkeeping of the NRA scan.
#[derive(Clone, Debug, Default)]
struct Bounds {
    lower: u128,
    /// Which of the `m` queried lists this object has been seen in.
    seen: Vec<bool>,
}

/// Run the plaintext NRA algorithm for a top-`k` query over `attributes` (with optional
/// `weights`; empty means binary weights) on `relation`.
pub fn nra_top_k(
    relation: &Relation,
    attributes: &[usize],
    weights: &[Score],
    k: usize,
) -> NraOutcome {
    let m = attributes.len();
    assert!(m > 0, "NRA needs at least one scoring attribute");
    let sorted = relation.sorted_lists();
    let n = relation.len();
    let k = k.min(n);
    let weight = |j: usize| -> u128 {
        if weights.is_empty() {
            1
        } else {
            weights[j] as u128
        }
    };

    let mut bounds: HashMap<ObjectId, Bounds> = HashMap::new();
    let mut bottoms: Vec<u128> = vec![0; m];

    for depth in 0..n {
        // Sorted access to every queried list at this depth.
        for (j, &attr) in attributes.iter().enumerate() {
            let item = sorted.item(attr, depth).expect("depth < n");
            bottoms[j] = weight(j) * item.score as u128;
            let entry = bounds
                .entry(item.object)
                .or_insert_with(|| Bounds { lower: 0, seen: vec![false; m] });
            entry.lower += weight(j) * item.score as u128;
            entry.seen[j] = true;
        }

        if bounds.len() < k || k == 0 {
            continue;
        }

        // Upper bound of a seen object: lower bound + bottoms of the lists it has not
        // been seen in.  Upper bound of an unseen object: sum of all bottoms.
        let upper = |b: &Bounds| -> u128 {
            b.lower
                + b.seen
                    .iter()
                    .enumerate()
                    .filter(|(_, &s)| !s)
                    .map(|(j, _)| bottoms[j])
                    .sum::<u128>()
        };

        // Current top-k by lower bound (ties broken by id for determinism).
        let mut by_lower: Vec<(&ObjectId, &Bounds)> = bounds.iter().collect();
        by_lower.sort_by(|a, b| b.1.lower.cmp(&a.1.lower).then(a.0.cmp(b.0)));
        let top: Vec<(ObjectId, u128)> =
            by_lower[..k].iter().map(|(id, b)| (**id, b.lower)).collect();
        let m_k = top[k - 1].1;

        let everyone_else_dominated = by_lower[k..].iter().all(|(_, b)| upper(b) <= m_k);
        let unseen_bound: u128 = bottoms.iter().sum();
        let unseen_dominated = bounds.len() == n || unseen_bound <= m_k;

        if everyone_else_dominated && unseen_dominated {
            return NraOutcome { top_k: top, halting_depth: depth + 1 };
        }
    }

    // Scanned everything: lower bounds are now exact scores.
    let mut by_lower: Vec<(&ObjectId, &Bounds)> = bounds.iter().collect();
    by_lower.sort_by(|a, b| b.1.lower.cmp(&a.1.lower).then(a.0.cmp(b.0)));
    NraOutcome {
        top_k: by_lower[..k.min(by_lower.len())].iter().map(|(id, b)| (**id, b.lower)).collect(),
        halting_depth: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sectopk_storage::Row;

    fn fig3_relation() -> Relation {
        Relation::new(
            vec!["r1".into(), "r2".into(), "r3".into()],
            vec![
                Row { id: ObjectId(1), values: vec![10, 3, 2] },
                Row { id: ObjectId(2), values: vec![8, 8, 0] },
                Row { id: ObjectId(3), values: vec![5, 7, 6] },
                Row { id: ObjectId(4), values: vec![3, 2, 8] },
                Row { id: ObjectId(5), values: vec![1, 1, 1] },
            ],
        )
    }

    #[test]
    fn fig3_top2_halts_at_depth_3() {
        // The worked example of Fig. 3 halts after depth 3 with X3 and X2 as the top-2.
        let r = fig3_relation();
        let outcome = nra_top_k(&r, &[0, 1, 2], &[], 2);
        assert_eq!(outcome.halting_depth, 3);
        let ids: Vec<ObjectId> = outcome.top_k.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![ObjectId(3), ObjectId(2)]);
    }

    #[test]
    fn results_match_exact_top_k_on_random_relations() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(20_24);
        for trial in 0..30 {
            let n = rng.gen_range(1..40);
            let m = rng.gen_range(1..5);
            let rows: Vec<Row> = (0..n)
                .map(|i| Row {
                    id: ObjectId(i as u64),
                    values: (0..m).map(|_| rng.gen_range(0..50)).collect(),
                })
                .collect();
            let relation = Relation::from_rows(rows);
            let attrs: Vec<usize> = (0..m).collect();
            let k = rng.gen_range(1..=n.min(10));
            let nra = nra_top_k(&relation, &attrs, &[], k);
            let exact = relation.plaintext_top_k(&attrs, &[], k);

            // The score *multiset* of the result must match the exact top-k (ties may be
            // broken differently, but NRA guarantees a valid top-k set).
            let nra_scores: Vec<u128> = nra
                .top_k
                .iter()
                .map(|(id, _)| relation.aggregate_score(*id, &attrs, &[]).unwrap())
                .collect();
            let exact_scores: Vec<u128> = exact.iter().map(|(_, s)| *s).collect();
            let mut a = nra_scores.clone();
            let mut b = exact_scores.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "trial {trial}: NRA must return a valid top-k set");
            assert!(nra.halting_depth <= n);
        }
    }

    #[test]
    fn weighted_queries_are_supported() {
        let r = fig3_relation();
        // Weight attribute 2 heavily: X4 (value 8) should win.
        let outcome = nra_top_k(&r, &[0, 2], &[1, 10], 1);
        assert_eq!(outcome.top_k[0].0, ObjectId(4));
        // The reported value is a lower bound on X4's true weighted score (3 + 80 = 83).
        assert!(outcome.top_k[0].1 <= 83);
        assert!(outcome.top_k[0].1 >= 80, "X4's attr-2 contribution alone is 80");
    }

    #[test]
    fn k_larger_than_relation_is_clamped() {
        let r = fig3_relation();
        let outcome = nra_top_k(&r, &[0], &[], 100);
        assert_eq!(outcome.top_k.len(), 5);
        assert_eq!(outcome.halting_depth, 5);
    }

    #[test]
    fn single_attribute_halts_early() {
        // With one attribute the first k depths already determine the answer.
        let r = fig3_relation();
        let outcome = nra_top_k(&r, &[0], &[], 2);
        assert_eq!(outcome.halting_depth, 2);
        let ids: Vec<ObjectId> = outcome.top_k.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![ObjectId(1), ObjectId(2)]);
    }
}
