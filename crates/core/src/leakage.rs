//! Executable leakage profiles (§9 and §10 of the paper).
//!
//! Theorem 9.2 states that SecTopK is CQA-secure with respect to the leakage functions
//! `L_Setup = (|R|, M)`, `L¹_Query = (QP, D_q)` (query pattern and halting depth, for S1)
//! and `L²_Query = {EP^d}` (per-depth equality patterns, for S2).  The optimisations add
//! the uniqueness pattern `UP^d` for S1 (`Qry_E`, §10.1) and the paper discusses how
//! batching dilutes it (§10.2).
//!
//! This module turns those statements into checkable predicates over the
//! [`sectopk_protocols::LeakageLedger`]s that the sub-protocols populate: after a query,
//! each cloud's recorded view must contain *only* event kinds allowed by its profile.
//! (The realisations of EncSort / EncCompare additionally reveal comparison outcomes of
//! anonymous items to S1 and blinded signs to S2 — see DESIGN.md — so those kinds are
//! part of the allowed sets.)

use std::fmt;

use sectopk_protocols::{LeakageLedger, TwoClouds};

use crate::query::QueryVariant;

/// A recorded observation that falls outside the leakage profile of a variant — the
/// typed replacement for the earlier `Result<(), String>` check result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeakageViolation {
    /// Which party over-observed (`"S1"` or `"S2"`).
    pub party: &'static str,
    /// The offending event kind.
    pub kind: String,
    /// The variant whose profile was violated (paper name, e.g. `"Qry_F"`).
    pub variant: &'static str,
    /// Debug rendering of the offending event, for actionable test failures.
    pub event: String,
}

impl fmt::Display for LeakageViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} observed a '{}' event, which the {} leakage profile does not allow: {}",
            self.party, self.kind, self.variant, self.event
        )
    }
}

impl std::error::Error for LeakageViolation {}

/// The event kinds each party is allowed to observe for a query variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeakageProfile {
    /// Event kinds S1's view may contain.
    pub s1_allowed: &'static [&'static str],
    /// Event kinds S2's view may contain.
    pub s2_allowed: &'static [&'static str],
}

/// S1's view under full privacy: the query pattern, the halting depth, and the
/// comparison outcomes of the (anonymous) sorting / halting comparisons.
pub const S1_FULL: &[&str] = &["query_issued", "halting_depth", "comparison_bit"];

/// S1's view under the SecDupElim / batching optimisations: additionally the per-depth
/// uniqueness pattern.
pub const S1_OPTIMIZED: &[&str] =
    &["query_issued", "halting_depth", "comparison_bit", "unique_count"];

/// S2's view: the per-depth equality patterns plus the blinded comparison signs.
pub const S2_ALL: &[&str] = &["equality_bit", "blinded_sign"];

/// The leakage profile of a query variant.
pub fn profile_for(variant: QueryVariant) -> LeakageProfile {
    match variant {
        QueryVariant::Full => LeakageProfile { s1_allowed: S1_FULL, s2_allowed: S2_ALL },
        QueryVariant::DupElim | QueryVariant::Batched { .. } => {
            LeakageProfile { s1_allowed: S1_OPTIMIZED, s2_allowed: S2_ALL }
        }
    }
}

/// Check both clouds' recorded views against the profile of `variant`.
///
/// Returns the first offending observation as a typed [`LeakageViolation`], which makes
/// test failures actionable.
pub fn check_leakage(clouds: &TwoClouds, variant: QueryVariant) -> Result<(), LeakageViolation> {
    check_ledgers(clouds.s1_ledger(), &clouds.s2_ledger(), variant)
}

/// Profile check over explicit ledger snapshots — what [`check_leakage`] runs, exposed
/// for the `Session` abstraction (whose implementations hand out ledger snapshots
/// rather than a `TwoClouds`).
pub fn check_ledgers(
    s1: &LeakageLedger,
    s2: &LeakageLedger,
    variant: QueryVariant,
) -> Result<(), LeakageViolation> {
    let profile = profile_for(variant);
    for event in s1.events() {
        if !profile.s1_allowed.contains(&event.kind()) {
            return Err(LeakageViolation {
                party: "S1",
                kind: event.kind().to_string(),
                variant: variant.name(),
                event: format!("{event:?}"),
            });
        }
    }
    for event in s2.events() {
        if !profile.s2_allowed.contains(&event.kind()) {
            return Err(LeakageViolation {
                party: "S2",
                kind: event.kind().to_string(),
                variant: variant.name(),
                event: format!("{event:?}"),
            });
        }
    }
    Ok(())
}

/// The equality-pattern summary S2 is allowed to learn at one depth: how many of the
/// pairwise tests came back equal (the paper's `EP^d` matrix up to the hidden
/// permutation).
pub fn s2_equality_pattern_summary(clouds: &TwoClouds) -> (usize, usize) {
    let ledger = clouds.s2_ledger();
    let total = ledger.count_kind("equality_bit");
    let equal = ledger
        .events()
        .iter()
        .filter(|e| matches!(e, sectopk_protocols::LeakageEvent::EqualityBit { equal: true, .. }))
        .count();
    (equal, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_between_variants() {
        let full = profile_for(QueryVariant::Full);
        let opt = profile_for(QueryVariant::DupElim);
        assert!(!full.s1_allowed.contains(&"unique_count"));
        assert!(opt.s1_allowed.contains(&"unique_count"));
        assert_eq!(full.s2_allowed, opt.s2_allowed);
        assert_eq!(profile_for(QueryVariant::Batched { p: 4 }).s1_allowed, S1_OPTIMIZED);
    }
}
