//! Fast standalone smoke test: one query end to end through the `Session` /
//! `QueryBuilder` front door on a 3-row relation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sectopk_core::{DataOwner, Query, Session};
use sectopk_storage::{ObjectId, Relation, Row};

#[test]
fn session_executes_top_1_on_three_rows() {
    let mut rng = StdRng::seed_from_u64(0xC04E);
    let owner = DataOwner::new(128, 3, &mut rng).expect("owner setup");
    let relation = Relation::new(
        vec!["a".into(), "b".into()],
        vec![
            Row { id: ObjectId(1), values: vec![10, 3] },
            Row { id: ObjectId(2), values: vec![8, 8] },
            Row { id: ObjectId(3), values: vec![5, 7] },
        ],
    );
    let (outsourced, _) = owner.outsource(&relation, &mut rng).expect("encrypt");

    let query = Query::top_k(1).attributes(["a", "b"]).resolve(&relation).expect("query");
    let mut session = owner.connect(&outsourced, 42).expect("clouds");
    let answer = session.execute(&query).expect("query");

    // 8 + 8 = 16 is the highest aggregate score; the planner keeps tiny relations on
    // the fully private path and records its decision.
    assert_eq!(answer.object_ids(), vec![ObjectId(2)]);
    assert!(answer.plan().expect("plan recorded").auto);
}
