//! Fast standalone smoke test: one `sec_query` end to end on a 3-row relation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sectopk_core::{resolve_results, sec_query, DataOwner, QueryConfig};
use sectopk_storage::{ObjectId, Relation, Row, TopKQuery};

#[test]
fn sec_query_top_1_on_three_rows() {
    let mut rng = StdRng::seed_from_u64(0xC04E);
    let owner = DataOwner::new(128, 3, &mut rng).expect("owner setup");
    let relation = Relation::from_rows(vec![
        Row { id: ObjectId(1), values: vec![10, 3] },
        Row { id: ObjectId(2), values: vec![8, 8] },
        Row { id: ObjectId(3), values: vec![5, 7] },
    ]);
    let (er, _) = owner.encrypt(&relation, &mut rng).expect("encrypt");

    let client = owner.authorize_client();
    let token = client.token(2, &TopKQuery::sum(vec![0, 1], 1)).expect("token");

    let mut clouds = owner.setup_clouds(42).expect("clouds");
    let outcome = sec_query(&mut clouds, &er, &token, &QueryConfig::dup_elim()).expect("query");

    let ids: Vec<ObjectId> = relation.rows().iter().map(|r| r.id).collect();
    let resolved = resolve_results(&outcome.top_k, &ids, owner.keys(), &mut rng).expect("resolve");
    // 8 + 8 = 16 is the highest aggregate score.
    assert_eq!(resolved[0].object, Some(ObjectId(2)));
}
