//! Shared helpers for the runnable examples.
//!
//! Each example is a small, self-contained binary; the only thing they share is the
//! pretty-printing of query outcomes, which lives here.

use sectopk_core::{PlanDecision, QueryOutcome, ResolvedResult};

/// Render a resolved result list as a small table.
pub fn format_results(results: &[ResolvedResult]) -> String {
    let mut out = String::from("rank | object       | worst (lower bound) | best (upper bound)\n");
    out.push_str("-----+--------------+---------------------+-------------------\n");
    for (i, r) in results.iter().enumerate() {
        let name = match r.object {
            Some(id) => format!("{id}"),
            None => "(placeholder)".to_string(),
        };
        out.push_str(&format!("{:>4} | {:<12} | {:>19} | {:>18}\n", i + 1, name, r.worst, r.best));
    }
    out
}

/// Render the execution statistics of a query outcome.
pub fn format_stats(outcome: &QueryOutcome) -> String {
    let s = &outcome.stats;
    format!(
        "depths scanned: {} (halted: {}), time: {:.3}s ({:.3}s/depth), \
bandwidth: {:.3} MB over {} messages ({} rounds), tracked list size: {}",
        s.depths_scanned,
        s.halted,
        s.total_seconds,
        s.seconds_per_depth(),
        s.channel.megabytes(),
        s.channel.total_messages(),
        s.channel.rounds,
        s.final_tracked_len,
    )
}

/// Render the planner's decision for one query execution.
pub fn format_plan(plan: &PlanDecision) -> String {
    let chooser = if plan.auto { "planner chose" } else { "caller fixed" };
    let p = match plan.batching_parameter() {
        Some(p) => format!(" (p = {p})"),
        None => String::new(),
    };
    format!(
        "{chooser} {}{p} for n = {}, m = {}, k = {} (estimated {} depths)",
        plan.variant_name(),
        plan.inputs.n,
        plan.inputs.m,
        plan.inputs.k,
        plan.estimated_depths,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sectopk_core::ResolvedResult;
    use sectopk_storage::ObjectId;

    #[test]
    fn plan_formatting_names_the_variant() {
        use sectopk_core::{plan, PlannerInputs};
        let decision = plan(&PlannerInputs::new(5, 3, 2, 0.0, true));
        let text = format_plan(&decision);
        assert!(text.contains("planner chose"));
        assert!(text.contains("Qry_F"));
    }

    #[test]
    fn formatting_includes_objects_and_placeholders() {
        let rows = vec![
            ResolvedResult { object: Some(ObjectId(3)), worst: 18, best: 18 },
            ResolvedResult { object: None, worst: -1, best: -1 },
        ];
        let table = format_results(&rows);
        assert!(table.contains("o3"));
        assert!(table.contains("(placeholder)"));
        assert!(table.contains("18"));
    }
}
