//! Example 1.1 of the paper: the encrypted `patients` heart-disease table.
//!
//! An authorized doctor (Alice) wants the top-2 patients by `chol + thalach` from a table
//! that was encrypted before being outsourced; the clouds compute the answer without
//! learning the records, the scores, or which patients were returned.
//!
//! ```text
//! cargo run --release -p sectopk-examples --example medical_records
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::{DataOwner, Query, QueryVariant, Session, VariantChoice};
use sectopk_datasets::{patient_name, patients_relation};
use sectopk_examples::{format_plan, format_stats};

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let relation = patients_relation();
    println!(
        "patients table: {} rows × {} attributes {:?}",
        relation.len(),
        relation.num_attributes(),
        relation.attribute_names()
    );

    // The hospital (data owner) encrypts the table before outsourcing it (HIPAA!).
    let owner = DataOwner::new(128, 5, &mut rng).expect("key generation");
    let (outsourced, _) = owner.outsource(&relation, &mut rng).expect("encryption");
    println!("outsourced: the cloud sees only {:?} = (n, M)\n", outsourced.er().setup_leakage());

    // Alice, an authorized doctor:
    // SELECT * FROM patients ORDER BY chol + thalach STOP AFTER 2 — by attribute name,
    // under each processing variant (Auto first, so the planner shows its choice).
    let variants = [
        VariantChoice::Auto,
        VariantChoice::Fixed(QueryVariant::Full),
        VariantChoice::Fixed(QueryVariant::DupElim),
        VariantChoice::Fixed(QueryVariant::Batched { p: 2 }),
    ];
    for variant in variants {
        let query = Query::top_k(2)
            .attributes(["chol", "thalach"])
            .variant(variant)
            .resolve(&relation)
            .expect("query validates");

        let mut session = owner.connect(&outsourced, 1).expect("cloud setup");
        let answer = session.execute(&query).expect("secure query");

        let names: Vec<String> = answer
            .results
            .iter()
            .filter(|r| r.object.is_some())
            .map(|r| format!("{} (chol+thalach ≥ {})", patient_name(r.object.unwrap()), r.worst))
            .collect();

        println!("{}", format_plan(answer.plan().expect("plan recorded")));
        println!("  top-2: {}\n  {}\n", names.join(", "), format_stats(&answer.outcome));
    }

    println!("expected (Example 1.1): David and Emma");
}
