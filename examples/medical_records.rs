//! Example 1.1 of the paper: the encrypted `patients` heart-disease table.
//!
//! An authorized doctor (Alice) wants the top-2 patients by `chol + thalach` from a table
//! that was encrypted before being outsourced; the clouds compute the answer without
//! learning the records, the scores, or which patients were returned.
//!
//! ```text
//! cargo run --release -p sectopk-examples --example medical_records
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::{resolve_results, sec_query, DataOwner, QueryConfig, QueryVariant};
use sectopk_datasets::{patient_name, patients_relation};
use sectopk_examples::format_stats;
use sectopk_storage::{ObjectId, TopKQuery};

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let relation = patients_relation();
    println!(
        "patients table: {} rows × {} attributes {:?}",
        relation.len(),
        relation.num_attributes(),
        relation.attribute_names()
    );

    // The hospital (data owner) encrypts the table before outsourcing it (HIPAA!).
    let owner = DataOwner::new(128, 5, &mut rng).expect("key generation");
    let (er, _) = owner.encrypt(&relation, &mut rng).expect("encryption");
    println!("outsourced: the cloud sees only {:?} = (n, M)\n", er.setup_leakage());

    // Alice, an authorized doctor:
    // SELECT * FROM patients ORDER BY chol + thalach STOP AFTER 2.
    let chol = relation.attribute_index("chol").unwrap();
    let thalach = relation.attribute_index("thalach").unwrap();
    let query = TopKQuery::sum(vec![chol, thalach], 2);
    let token = owner.authorize_client().token(relation.num_attributes(), &query).unwrap();

    // The clouds answer the query under each of the three processing variants.
    for config in [QueryConfig::full(), QueryConfig::dup_elim(), QueryConfig::batched(2)] {
        let mut clouds = owner.setup_clouds(1).expect("cloud setup");
        let outcome = sec_query(&mut clouds, &er, &token, &config).expect("secure query");

        let candidates: Vec<ObjectId> = relation.rows().iter().map(|r| r.id).collect();
        let resolved =
            resolve_results(&outcome.top_k, &candidates, owner.keys(), &mut rng).expect("resolve");
        let names: Vec<String> = resolved
            .iter()
            .filter(|r| r.object.is_some())
            .map(|r| format!("{} (chol+thalach ≥ {})", patient_name(r.object.unwrap()), r.worst))
            .collect();

        let variant = match config.variant {
            QueryVariant::Full => "Qry_F (full privacy)",
            QueryVariant::DupElim => "Qry_E (SecDupElim)",
            QueryVariant::Batched { .. } => "Qry_Ba (batched)",
        };
        println!("{variant}\n  top-2: {}\n  {}", names.join(", "), format_stats(&outcome));
    }

    println!("\nexpected (Example 1.1): David and Emma");
}
