//! Quickstart: outsource a small relation and run one secure top-k query through the
//! `Session` / `QueryBuilder` front door.
//!
//! ```text
//! cargo run --release -p sectopk-examples --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::{DataOwner, Query, Session};
use sectopk_examples::{format_plan, format_results, format_stats};
use sectopk_storage::{ObjectId, Relation, Row};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // --- Data owner ---------------------------------------------------------------------
    // Generate keys (a small 128-bit modulus keeps the example instant; production
    // deployments would use 2048+ bits) and outsource the encrypted relation.
    println!("[owner]   generating keys and encrypting the relation…");
    let owner = DataOwner::new(128, 4, &mut rng).expect("key generation");
    let relation = Relation::new(
        vec!["price".into(), "rating".into(), "freshness".into()],
        vec![
            Row { id: ObjectId(1), values: vec![30, 9, 4] },
            Row { id: ObjectId(2), values: vec![80, 7, 9] },
            Row { id: ObjectId(3), values: vec![55, 8, 8] },
            Row { id: ObjectId(4), values: vec![10, 3, 2] },
            Row { id: ObjectId(5), values: vec![95, 9, 1] },
            Row { id: ObjectId(6), values: vec![40, 6, 7] },
        ],
    );
    let (outsourced, stats) = owner.outsource(&relation, &mut rng).expect("relation encryption");
    println!(
        "[owner]   outsourced {} objects × {} attributes ({} bytes of ciphertext)",
        stats.num_objects, stats.num_attributes, stats.encrypted_bytes
    );

    // --- Authorized client ---------------------------------------------------------------
    // SELECT * FROM ER ORDER BY rating + freshness STOP AFTER 3 — described fluently;
    // the default variant(Auto) hands the Qry_F / Qry_E / Qry_Ba choice to the planner.
    let query = Query::top_k(3)
        .attributes(["rating", "freshness"])
        .resolve(&relation)
        .expect("query validates against the schema");
    println!("[client]  query built: top-{} over {} attributes", 3, 2);

    // --- One front door ------------------------------------------------------------------
    // A session runs the whole pipeline: token → plan → SecQuery → resolution.
    let mut session = owner.connect(&outsourced, 42).expect("cloud setup");
    let answer = session.execute(&query).expect("secure query");
    println!("[planner] {}", format_plan(answer.plan().expect("plan recorded")));
    println!("[clouds]  {}", format_stats(&answer.outcome));

    println!("\nTop-3 by rating + freshness:\n{}", format_results(&answer.results));

    // Cross-check against the plaintext answer (only possible because this example owns
    // the plaintext; the clouds never see it).
    let expected = relation.plaintext_top_k(&[1, 2], &[], 3);
    println!(
        "plaintext oracle: {:?}",
        expected.iter().map(|(id, s)| (id.0, *s)).collect::<Vec<_>>()
    );
}
