//! Quickstart: outsource a small relation and run one secure top-k query.
//!
//! ```text
//! cargo run --release -p sectopk-examples --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::{resolve_results, sec_query, DataOwner, QueryConfig};
use sectopk_examples::{format_results, format_stats};
use sectopk_storage::{ObjectId, Relation, Row, TopKQuery};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // --- Data owner ---------------------------------------------------------------------
    // Generate keys (a small 128-bit modulus keeps the example instant; production
    // deployments would use 2048+ bits) and encrypt the relation.
    println!("[owner]   generating keys and encrypting the relation…");
    let owner = DataOwner::new(128, 4, &mut rng).expect("key generation");
    let relation = Relation::new(
        vec!["price".into(), "rating".into(), "freshness".into()],
        vec![
            Row { id: ObjectId(1), values: vec![30, 9, 4] },
            Row { id: ObjectId(2), values: vec![80, 7, 9] },
            Row { id: ObjectId(3), values: vec![55, 8, 8] },
            Row { id: ObjectId(4), values: vec![10, 3, 2] },
            Row { id: ObjectId(5), values: vec![95, 9, 1] },
            Row { id: ObjectId(6), values: vec![40, 6, 7] },
        ],
    );
    let (er, stats) = owner.encrypt(&relation, &mut rng).expect("relation encryption");
    println!(
        "[owner]   outsourced {} objects × {} attributes ({} bytes of ciphertext)",
        stats.num_objects, stats.num_attributes, stats.encrypted_bytes
    );

    // --- Authorized client ---------------------------------------------------------------
    // SELECT * FROM ER ORDER BY rating + freshness STOP AFTER 3
    let client = owner.authorize_client();
    let query = TopKQuery::sum(vec![1, 2], 3);
    let token = client.token(relation.num_attributes(), &query).expect("token generation");
    println!(
        "[client]  token generated for top-{} over {} attributes",
        token.k,
        token.num_attributes()
    );

    // --- The two clouds -------------------------------------------------------------------
    let mut clouds = owner.setup_clouds(42).expect("cloud setup");
    let outcome =
        sec_query(&mut clouds, &er, &token, &QueryConfig::dup_elim()).expect("secure query");
    println!("[clouds]  {}", format_stats(&outcome));

    // --- Result interpretation by the key holder -----------------------------------------
    let candidates: Vec<ObjectId> = relation.rows().iter().map(|r| r.id).collect();
    let resolved =
        resolve_results(&outcome.top_k, &candidates, owner.keys(), &mut rng).expect("resolution");
    println!("\nTop-3 by rating + freshness:\n{}", format_results(&resolved));

    // Cross-check against the plaintext answer (only possible because this example owns
    // the plaintext; the clouds never see it).
    let expected = relation.plaintext_top_k(&[1, 2], &[], 3);
    println!(
        "plaintext oracle: {:?}",
        expected.iter().map(|(id, s)| (id.0, *s)).collect::<Vec<_>>()
    );
}
