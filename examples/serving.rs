//! Serving: one shared S2 worker pool answering a workload of top-k queries for many
//! concurrent client sessions, with per-session metrics, leakage ledgers, and the
//! adaptive planner choosing the processing variant per query.
//!
//! ```text
//! cargo run --release -p sectopk-examples --example serving
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::{DataOwner, VariantChoice};
use sectopk_datasets::{QueryWorkload, WorkloadSpec};
use sectopk_server::{ServeConfig, ServeExt};
use sectopk_storage::{ObjectId, Relation, Row};

fn main() {
    let mut rng = StdRng::seed_from_u64(41);

    // --- Data owner: keys + outsourced relation -----------------------------------------
    println!("[owner]   generating keys and encrypting the relation…");
    let owner = DataOwner::new(128, 3, &mut rng).expect("key generation");
    let relation = Relation::new(
        vec!["price".into(), "rating".into(), "freshness".into()],
        vec![
            Row { id: ObjectId(1), values: vec![30, 9, 4] },
            Row { id: ObjectId(2), values: vec![80, 7, 9] },
            Row { id: ObjectId(3), values: vec![55, 8, 8] },
            Row { id: ObjectId(4), values: vec![10, 3, 2] },
            Row { id: ObjectId(5), values: vec![95, 9, 1] },
            Row { id: ObjectId(6), values: vec![40, 6, 7] },
        ],
    );
    let (outsourced, _) = owner.outsource(&relation, &mut rng).expect("relation encryption");

    // --- A workload of independent client queries (§11.2.1 methodology) -----------------
    let spec = WorkloadSpec { queries: 12, m_range: (1, 3), k_range: (1, 3) };
    let workload = QueryWorkload::generate(&spec, relation.num_attributes(), 41);
    println!("[clients] generated a {}-query workload", workload.queries.len());

    // --- Serve it: 4 concurrent sessions sharing one 4-worker S2 pool, planner on -------
    let sessions = 4;
    let server = owner.serve_relation(&outsourced, sessions);
    let config = ServeConfig::new(sessions, 0xACE).with_variant(VariantChoice::Auto);
    println!("[server]  serving with {sessions} sessions over {sessions} S2 workers…");
    let report = server.serve(&workload, &config).expect("serve");

    println!(
        "[server]  {} queries in {:.2}s  →  {:.2} queries/s aggregate, {} failures\n",
        report.queries,
        report.wall_seconds,
        report.throughput_qps(),
        report.error_count(),
    );
    println!("session | queries | rounds | bytes    | S2 ledger events");
    println!("--------+---------+--------+----------+-----------------");
    for s in &report.sessions {
        println!(
            "{:>7} | {:>7} | {:>6} | {:>8} | {:>16}",
            s.session.0,
            s.outcomes.len(),
            s.metrics.rounds,
            s.metrics.bytes,
            s.s2_ledger.len(),
        );
    }

    println!("\nplanner decisions across the workload:");
    for (variant, p, count) in report.variant_histogram() {
        match p {
            Some(p) => println!("  {variant} (p = {p}): {count} queries"),
            None => println!("  {variant}: {count} queries"),
        }
    }

    // The serial reference run is byte-identical per session — scheduling is
    // unobservable (the concurrency suite asserts this for 16 sessions).
    let serial = server.serve_serial(&workload, &config).expect("serial serve");
    let identical = report
        .sessions
        .iter()
        .zip(serial.sessions.iter())
        .all(|(a, b)| a.s2_ledger.events() == b.s2_ledger.events() && a.metrics == b.metrics);
    println!("\nconcurrent == serial (per-session ledgers & metrics): {identical}");
    assert!(identical, "serving must be schedule-invariant");
}
