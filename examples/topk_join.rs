//! Secure top-k join (§12): join two encrypted relations on an equi-join condition and
//! return the k best joined tuples by a combined score — without the clouds learning the
//! data, the join keys, or which tuples matched.
//!
//! ```text
//! cargo run --release -p sectopk-examples --example topk_join
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::{encrypt_for_join, join_token, top_k_join, JoinQuery};
use sectopk_crypto::MasterKeys;
use sectopk_protocols::TwoClouds;
use sectopk_storage::{ObjectId, Relation, Row};

fn main() {
    let mut rng = StdRng::seed_from_u64(11);

    // Two relations:
    //   orders(customer, amount)     — R1
    //   loyalty(customer, bonus)     — R2
    // Query: SELECT * FROM orders, loyalty WHERE orders.customer = loyalty.customer
    //        ORDER BY orders.amount + loyalty.bonus STOP AFTER 3
    let orders = Relation::new(
        vec!["customer".into(), "amount".into()],
        vec![
            Row { id: ObjectId(1), values: vec![101, 250] },
            Row { id: ObjectId(2), values: vec![102, 90] },
            Row { id: ObjectId(3), values: vec![103, 400] },
            Row { id: ObjectId(4), values: vec![101, 120] },
            Row { id: ObjectId(5), values: vec![105, 999] },
        ],
    );
    let loyalty = Relation::new(
        vec!["customer".into(), "bonus".into()],
        vec![
            Row { id: ObjectId(1), values: vec![101, 40] },
            Row { id: ObjectId(2), values: vec![103, 10] },
            Row { id: ObjectId(3), values: vec![104, 70] },
        ],
    );

    println!("orders: {} rows, loyalty: {} rows", orders.len(), loyalty.len());

    // Data owner: encrypt both relations for joining (every attribute value gets an EHL
    // encoding plus a Paillier encryption, Algorithm 10).
    let keys = MasterKeys::generate(128, 4, &mut rng).expect("key generation");
    let enc_orders = encrypt_for_join(&orders, &keys, "join/left", &mut rng).expect("encrypt R1");
    let enc_loyalty =
        encrypt_for_join(&loyalty, &keys, "join/right", &mut rng).expect("encrypt R2");

    // Client: build the join token.
    let query = JoinQuery { join_left: 0, join_right: 0, score_left: 1, score_right: 1, k: 3 };
    let token = join_token(&keys, 2, 2, &query, &[0, 1], &[1]).expect("join token");

    // Clouds: run ./sec = SecJoin → SecFilter → encrypted top-k selection.
    let mut clouds = TwoClouds::new(&keys, 5).expect("cloud setup");
    let outcome = top_k_join(&mut clouds, &enc_orders, &enc_loyalty, &token).expect("secure join");

    println!(
        "pairs considered: {}, matching pairs: {}, bandwidth: {:.3} MB, rounds: {}",
        outcome.pairs_considered,
        outcome.matching_pairs,
        clouds.channel().megabytes(),
        clouds.channel().rounds,
    );

    println!("\ntop-{} joined tuples (decrypted by the key holder):", token.k);
    println!("rank | customer | amount | bonus | score");
    println!("-----+----------+--------+-------+------");
    for (rank, tuple) in outcome.top_k.iter().enumerate() {
        let attrs: Vec<u64> =
            tuple.attributes.iter().map(|a| keys.paillier_secret.decrypt_u64(a).unwrap()).collect();
        let score = keys.paillier_secret.decrypt_u64(&tuple.score).unwrap();
        println!(
            "{:>4} | {:>8} | {:>6} | {:>5} | {:>5}",
            rank + 1,
            attrs[0],
            attrs[1],
            attrs[2],
            score
        );
    }

    println!(
        "\nexpected: customer 103 (400+10=410), then customer 101 (250+40=290), then 101 (120+40=160)"
    );
}
