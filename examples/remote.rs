//! Remote: the two-binary deployment in one process — an S2 listener on a real
//! loopback TCP socket, a [`RemoteSession`] connected to it through
//! [`DataOwner::connect_remote`], and a full `Qry_F` query over the wire.
//!
//! ```text
//! cargo run --release -p sectopk-examples --example remote
//! ```
//!
//! For the genuine multi-process topology (`sectopk-s2d` + `sectopk-cli`), run
//! `scripts/tcp_demo.sh`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::{DataOwner, Query, QueryVariant, Session, TransportKind, VariantChoice};
use sectopk_protocols::TcpCloudServer;
use sectopk_storage::{ObjectId, Relation, Row};

fn main() {
    let mut rng = StdRng::seed_from_u64(41);

    // --- Crypto cloud S2: a TCP listener that holds no keys and no data -----------------
    // Every accepted connection provisions its own engine over the handshake, exactly
    // as the `sectopk-s2d` daemon does.
    let server = TcpCloudServer::bind("127.0.0.1:0", 2).expect("bind loopback listener");
    let addr = server.local_addr().to_string();
    println!("[s2]      listening on {addr} (no keys, no data)");

    // --- Data owner: keys + outsourced relation -----------------------------------------
    println!("[owner]   generating keys and encrypting the relation…");
    let owner = DataOwner::new(128, 3, &mut rng).expect("key generation");
    let relation = Relation::new(
        vec!["price".into(), "rating".into(), "freshness".into()],
        vec![
            Row { id: ObjectId(1), values: vec![30, 9, 4] },
            Row { id: ObjectId(2), values: vec![80, 7, 9] },
            Row { id: ObjectId(3), values: vec![55, 8, 8] },
            Row { id: ObjectId(4), values: vec![10, 3, 2] },
            Row { id: ObjectId(5), values: vec![95, 9, 1] },
            Row { id: ObjectId(6), values: vec![40, 6, 7] },
        ],
    );
    let (outsourced, _) = owner.outsource(&relation, &mut rng).expect("relation encryption");

    // --- Client: a networked session through the same Session front door ----------------
    let mut remote = owner.connect_remote(&outsourced, &addr, 0xBEEF).expect("connect");
    println!("[client]  session {:?} connected to {}", remote.clouds().transport_kind(), addr);

    let query = Query::top_k(2)
        .attribute_indices([0, 1, 2])
        .variant(VariantChoice::Fixed(QueryVariant::Full))
        .build()
        .expect("query builds");
    let resolved = remote.execute(&query).expect("networked Qry_F");
    for (rank, result) in resolved.results.iter().enumerate() {
        match result.object {
            Some(id) => println!(
                "[client]  #{rank}: object {} (score bounds [{}, {}])",
                id.0, result.worst, result.best
            ),
            None => println!("[client]  #{rank}: neutralised placeholder"),
        }
    }
    let metrics = remote.metrics();
    println!(
        "[client]  rounds={} bytes={} ciphertexts={}",
        metrics.rounds, metrics.bytes, metrics.ciphertexts
    );

    // --- Byte-identity against the in-process reference ---------------------------------
    // Same seeds, no socket anywhere: the wire is unobservable in results, metrics, and
    // leakage ledgers (the transport_equivalence suite pins this for all four
    // transports).
    let mut reference = owner
        .connect_with(&outsourced, 0xBEEF, TransportKind::InProcess, true)
        .expect("in-process reference");
    let expected = reference.execute(&query).expect("reference Qry_F");
    let identical = resolved.results == expected.results
        && remote.metrics() == reference.metrics()
        && remote.s2_ledger().events() == reference.s2_ledger().events();
    println!("[check]   TCP == in-process (results, metrics, S2 ledger): {identical}");
    assert!(identical, "the wire must be unobservable");
}
