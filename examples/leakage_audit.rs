//! Leakage audit: run the same query under each processing variant and print exactly
//! what each cloud observed, next to the leakage profile Theorem 9.2 allows.
//!
//! ```text
//! cargo run --release -p sectopk-examples --example leakage_audit
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::{check_leakage, profile_for, sec_query, DataOwner, QueryConfig, QueryVariant};
use sectopk_datasets::fig3_relation;
use sectopk_storage::TopKQuery;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let relation = fig3_relation();
    let owner = DataOwner::new(128, 4, &mut rng).expect("key generation");
    let (er, _) = owner.encrypt(&relation, &mut rng).expect("encryption");
    let token = owner
        .authorize_client()
        .token(relation.num_attributes(), &TopKQuery::sum(vec![0, 1, 2], 2))
        .expect("token");

    println!("setup leakage L_Setup(R) = (|R|, M) = {:?}\n", er.setup_leakage());

    for (config, variant) in [
        (QueryConfig::full(), QueryVariant::Full),
        (QueryConfig::dup_elim(), QueryVariant::DupElim),
        (QueryConfig::batched(2), QueryVariant::Batched { p: 2 }),
    ] {
        let mut clouds = owner.setup_clouds(123).expect("cloud setup");
        let outcome = sec_query(&mut clouds, &er, &token, &config).expect("query");

        let profile = profile_for(variant);
        println!("==== {} ====", variant.name());
        println!(
            "  halting depth: {} (halted: {})",
            outcome.stats.depths_scanned, outcome.stats.halted
        );
        println!("  allowed S1 view: {:?}", profile.s1_allowed);
        println!("  observed S1 view: {:?}", clouds.s1_ledger().kind_histogram());
        println!("  allowed S2 view: {:?}", profile.s2_allowed);
        println!("  observed S2 view: {:?}", clouds.s2_ledger().kind_histogram());
        match check_leakage(&clouds, variant) {
            Ok(()) => println!("  OK: recorded views are within the allowed leakage profile"),
            Err(e) => println!("  VIOLATION: {e}"),
        }
        let (equal, total) = sectopk_core::leakage::s2_equality_pattern_summary(&clouds);
        println!("  S2 equality pattern: {equal}/{total} pairwise tests were 'equal'");
        println!(
            "  channel: {:.3} MB, {} messages, {} rounds\n",
            clouds.channel().megabytes(),
            clouds.channel().total_messages(),
            clouds.channel().rounds
        );
    }
}
