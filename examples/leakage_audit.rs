//! Leakage audit: run the same query under each processing variant and print exactly
//! what each cloud observed, next to the leakage profile Theorem 9.2 allows.
//!
//! ```text
//! cargo run --release -p sectopk-examples --example leakage_audit
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::{
    check_ledgers, profile_for, DataOwner, Query, QueryVariant, Session, VariantChoice,
};
use sectopk_datasets::fig3_relation;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let relation = fig3_relation();
    let owner = DataOwner::new(128, 4, &mut rng).expect("key generation");
    let (outsourced, _) = owner.outsource(&relation, &mut rng).expect("encryption");

    println!("setup leakage L_Setup(R) = (|R|, M) = {:?}\n", outsourced.er().setup_leakage());

    for variant in [QueryVariant::Full, QueryVariant::DupElim, QueryVariant::Batched { p: 2 }] {
        let query = Query::top_k(2)
            .attribute_indices([0, 1, 2])
            .variant(VariantChoice::Fixed(variant))
            .build()
            .expect("query validates");

        let mut session = owner.connect(&outsourced, 123).expect("cloud setup");
        let answer = session.execute(&query).expect("query");

        let profile = profile_for(variant);
        let (s1, s2) = (session.s1_ledger(), session.s2_ledger());
        println!("==== {} ====", variant.name());
        println!(
            "  halting depth: {} (halted: {})",
            answer.stats().depths_scanned,
            answer.stats().halted
        );
        println!("  allowed S1 view: {:?}", profile.s1_allowed);
        println!("  observed S1 view: {:?}", s1.kind_histogram());
        println!("  allowed S2 view: {:?}", profile.s2_allowed);
        println!("  observed S2 view: {:?}", s2.kind_histogram());
        match check_ledgers(&s1, &s2, variant) {
            Ok(()) => println!("  OK: recorded views are within the allowed leakage profile"),
            Err(e) => println!("  VIOLATION: {e}"),
        }
        let (equal, total) = sectopk_core::leakage::s2_equality_pattern_summary(session.clouds());
        println!("  S2 equality pattern: {equal}/{total} pairwise tests were 'equal'");
        println!(
            "  channel: {:.3} MB, {} messages, {} rounds\n",
            session.metrics().megabytes(),
            session.metrics().total_messages(),
            session.metrics().rounds
        );
    }
}
