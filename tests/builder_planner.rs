//! Builder + planner coverage: every builder-accepted query must round-trip through
//! token generation and execute identically under `variant(Auto)` and under the variant
//! the planner would have chosen explicitly — the planner is a pure function of the
//! query shape, so `Auto` can never change *what* a query answers, only how fast and
//! with which leakage profile.
//!
//! Alongside the property tests, unit tests pin the planner's decisions at the §11
//! dataset sizes (10⁵–10⁶ rows → `Qry_Ba` with a planner-chosen `p ≥ k`; worked-example
//! sizes → `Qry_F`).

use proptest::proptest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sectopk_core::{
    plan, DataOwner, PlannerInputs, Query, QueryVariant, SecTopKError, Session, VariantChoice,
};
use sectopk_storage::{ObjectId, QueryError, Relation, Row};
use sectopk_tests::{
    assert_valid_top_k, harness, run_built_query, TEST_EHL_KEYS, TEST_MODULUS_BITS,
};

fn random_relation(rng: &mut StdRng) -> Relation {
    let num_attributes = rng.gen_range(2usize..=3);
    let rows = rng.gen_range(3usize..=6);
    let names = (0..num_attributes).map(|i| format!("a{i}")).collect();
    let rows = (1..=rows)
        .map(|id| Row {
            id: ObjectId(id as u64),
            values: (0..num_attributes).map(|_| rng.gen_range(0..16)).collect(),
        })
        .collect();
    Relation::new(names, rows)
}

/// A random builder-accepted query over `relation`, built by *name* half the time to
/// exercise schema resolution.
fn random_query(rng: &mut StdRng, relation: &Relation) -> Query {
    let num_attributes = relation.num_attributes();
    let m = rng.gen_range(1..=num_attributes);
    let mut attrs: Vec<usize> = (0..num_attributes).collect();
    for i in (1..attrs.len()).rev() {
        attrs.swap(i, rng.gen_range(0..=i));
    }
    attrs.truncate(m);
    attrs.sort_unstable();
    let k = rng.gen_range(1..=3);

    let builder = if rng.gen() {
        let names: Vec<String> =
            attrs.iter().map(|&a| relation.attribute_names()[a].clone()).collect();
        Query::top_k(k).attributes(names)
    } else {
        Query::top_k(k).attribute_indices(attrs.clone())
    };
    let builder = if rng.gen() {
        builder.weights(attrs.iter().map(|_| rng.gen_range(1..4)))
    } else {
        builder
    };
    builder.resolve(relation).expect("builder-accepted query")
}

proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(4))]
    #[test]
    fn auto_executes_identically_to_the_explicitly_planned_variant(case_seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(case_seed ^ 0x0B11_1DE5);
        let relation = random_relation(&mut rng);
        let query = random_query(&mut rng, &relation);
        let harness_seed = rng.gen::<u64>();

        // The builder-accepted query must round-trip through token generation.
        let mut h = harness(relation.clone(), harness_seed);
        let token = h
            .owner
            .authorize_client()
            .token(relation.num_attributes(), query.spec())
            .expect("builder-accepted queries generate tokens");
        assert_eq!(token.k, query.spec().k);
        assert_eq!(token.num_attributes(), query.spec().num_attributes());

        // Execute under variant(Auto)…
        let auto = run_built_query(&mut h, &query);
        let decision = auto.plan().expect("auto execution records its plan").clone();
        assert!(decision.auto);

        // …and again, on a fresh but identically seeded session, with the planner's
        // choice pinned explicitly.  Results must be byte-identical.
        let mut h2 = harness(relation.clone(), harness_seed);
        let pinned = query.clone().with_variant(VariantChoice::Fixed(decision.variant));
        let explicit = run_built_query(&mut h2, &pinned);

        assert_eq!(auto.results, explicit.results, "resolved answers must agree");
        assert_eq!(auto.outcome.top_k, explicit.outcome.top_k, "ciphertexts must be identical");
        assert_eq!(explicit.plan().expect("plan recorded").variant, decision.variant);
        assert!(!explicit.plan().expect("plan recorded").auto);

        // And the answer itself is a valid top-k set.
        let spec = query.spec();
        assert_valid_top_k(
            &relation,
            &spec.attributes,
            &spec.weights,
            spec.k,
            &auto.object_ids(),
            "auto-planned query",
        );
    }
}

#[test]
fn planner_decisions_pin_the_section_11_operating_points() {
    // Worked-example scale (Fig. 3: n = 5): full privacy is affordable.
    let fig3 = plan(&PlannerInputs::new(5, 3, 2, 0.0, true));
    assert_eq!(fig3.variant, QueryVariant::Full);

    // §11.2.1 scale (insurance/forest ≈ 10⁵ rows, synthetic up to 10⁶; k = 5, m = 3):
    // the planner reaches for Qry_Ba with p ≥ k.
    for n in [100_000usize, 1_000_000] {
        let decision = plan(&PlannerInputs::new(n, 3, 5, 0.0, true));
        match decision.variant {
            QueryVariant::Batched { p } => assert!(p >= 5, "n = {n}: p = {p} must be ≥ k"),
            other => panic!("n = {n}: expected Qry_Ba, got {other:?}"),
        }
    }

    // In between, the uniqueness-pattern trade of Qry_E wins.
    let mid = plan(&PlannerInputs::new(1_000, 3, 5, 0.0, true));
    assert_eq!(mid.variant, QueryVariant::DupElim);
}

#[test]
fn session_plan_preview_matches_what_execute_records() {
    let mut rng = StdRng::seed_from_u64(0x9999);
    let owner = DataOwner::new(TEST_MODULUS_BITS, TEST_EHL_KEYS, &mut rng).unwrap();
    let relation = sectopk_datasets::fig3_relation();
    let (outsourced, _) = owner.outsource(&relation, &mut rng).unwrap();
    let mut session = owner.connect(&outsourced, 0x9999).unwrap();

    let query = Query::top_k(2).attribute_indices([0, 1, 2]).build().unwrap();
    let preview = session.plan(&query);
    let executed = session.execute(&query).unwrap();
    assert_eq!(&preview, executed.plan().expect("plan recorded"));
}

#[test]
fn builder_rejections_surface_as_typed_query_errors() {
    // The builder and the session agree on what is invalid, and nothing invalid
    // reaches token generation or the clouds.
    let err = Query::top_k(0).attribute_indices([0]).build().unwrap_err();
    assert_eq!(err, SecTopKError::Query(QueryError::ZeroK));

    let mut rng = StdRng::seed_from_u64(0x77AA);
    let relation = random_relation(&mut rng);
    let err = Query::top_k(1).attributes(["not-a-column"]).resolve(&relation).unwrap_err();
    assert!(matches!(err, SecTopKError::Query(QueryError::UnknownAttribute { .. })));
}
