//! The §11.3 comparison: SecTopK versus the secure-kNN baseline on the same workload.
//!
//! The baseline must (a) produce the same top-k answers when the scoring function is the
//! one §11.3 uses (`Σ x_i²`, queried as the nearest neighbours of the per-attribute upper
//! bound), and (b) exhibit its characteristic O(n·m) per-query cost, which is what makes
//! it lose to SecTopK on anything but tiny relations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sectopk_core::QueryConfig;
use sectopk_knn::{encrypt_for_knn, sknn_query};
use sectopk_storage::{ObjectId, Relation, Row, TopKQuery};
use sectopk_tests::{assert_valid_top_k, harness, run_query};

fn random_relation(n: usize, m: usize, rng: &mut StdRng) -> Relation {
    Relation::from_rows(
        (0..n)
            .map(|i| Row {
                id: ObjectId(i as u64),
                values: (0..m).map(|_| rng.gen_range(0..50)).collect(),
            })
            .collect(),
    )
}

#[test]
fn baseline_and_sectopk_agree_on_sum_scores() {
    // With non-negative attributes, the records nearest to the upper-bound point under
    // squared Euclidean distance are not necessarily the top records by plain sum, but
    // for the clearly separated relation below both notions coincide; the test pins the
    // adaptation described in §11.3.
    let mut rng = StdRng::seed_from_u64(42);
    let relation = Relation::from_rows(vec![
        Row { id: ObjectId(0), values: vec![45, 48] },
        Row { id: ObjectId(1), values: vec![10, 12] },
        Row { id: ObjectId(2), values: vec![30, 29] },
        Row { id: ObjectId(3), values: vec![5, 2] },
    ]);
    let attrs = vec![0, 1];
    let k = 2;

    // SecTopK answer.
    let mut h = harness(relation.clone(), 55);
    let (topk_ids, _) =
        run_query(&mut h, &TopKQuery::sum(attrs.clone(), k), &QueryConfig::dup_elim());
    assert_valid_top_k(&relation, &attrs, &[], k, &topk_ids, "SecTopK");

    // Baseline answer: k nearest to the upper bound (50, 50).
    let db = encrypt_for_knn(&relation, h.owner.keys(), &mut rng).unwrap();
    let knn = sknn_query(h.session.clouds_mut(), &db, &[50, 50], k).unwrap();
    let knn_ids: Vec<ObjectId> = knn.nearest.iter().map(|&i| relation.rows()[i].id).collect();

    let mut a = topk_ids.clone();
    let mut b = knn_ids.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b, "both approaches must select the same records");
}

#[test]
fn baseline_cost_scales_linearly_with_the_relation() {
    // The baseline's per-query work is n·m secure multiplications; doubling n doubles the
    // interactive work and bandwidth.  (SecTopK's per-depth cost is independent of n —
    // that contrast is Fig. / §11.3's headline claim.)
    let mut rng = StdRng::seed_from_u64(77);
    let small_rel = random_relation(4, 3, &mut rng);
    let large_rel = random_relation(8, 3, &mut rng);

    let mut h = harness(small_rel.clone(), 56);
    let small_db = encrypt_for_knn(&small_rel, h.owner.keys(), &mut rng).unwrap();
    let small = sknn_query(h.session.clouds_mut(), &small_db, &[50, 50, 50], 2).unwrap();

    let large_db = encrypt_for_knn(&large_rel, h.owner.keys(), &mut rng).unwrap();
    let large = sknn_query(h.session.clouds_mut(), &large_db, &[50, 50, 50], 2).unwrap();

    assert_eq!(small.secure_multiplications, 4 * 3);
    assert_eq!(large.secure_multiplications, 8 * 3);
    assert!(large.channel.bytes > small.channel.bytes);
}

#[test]
fn sectopk_per_depth_bandwidth_is_independent_of_n() {
    // Scan the same number of depths on two relations of different sizes: the bandwidth
    // per depth must be (nearly) identical, whereas the baseline's grows with n.
    let mut rng = StdRng::seed_from_u64(88);
    let small_rel = random_relation(6, 2, &mut rng);
    let large_rel = random_relation(12, 2, &mut rng);
    let query = TopKQuery::sum(vec![0, 1], 2);
    let config = QueryConfig::dup_elim().with_max_depth(2);

    let mut h_small = harness(small_rel, 57);
    let (_, small) = run_query(&mut h_small, &query, &config);
    let mut h_large = harness(large_rel, 58);
    let (_, large) = run_query(&mut h_large, &query, &config);

    assert_eq!(small.stats.depths_scanned, 2);
    assert_eq!(large.stats.depths_scanned, 2);
    let ratio = large.stats.bytes_per_depth() / small.stats.bytes_per_depth();
    assert!(ratio < 2.0, "per-depth bandwidth should not scale with n (ratio {ratio:.2})");
}
