//! Failure injection over the real TCP transport.
//!
//! The in-process transports can only fail by construction (a worker panicking); a
//! socket can die under a live query.  These tests sever connections server-side with
//! [`TcpCloudServer::drop_session`] and assert the contract from both ends:
//!
//! * the client surfaces a typed [`ProtocolError::Transport`] — no panic, and no
//!   partial result escapes (`Session::execute` returns `Err`, never a truncated
//!   `ResolvedTopK`);
//! * the server reaps the dead session from the shared `MultiplexServer` pool (its id
//!   becomes connectable again) and keeps serving clean neighbours **byte-identically**
//!   to a run where the victim never existed.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::{
    DataOwner, Outsourced, Query, QueryVariant, Session, TcpOptions, TransportKind, VariantChoice,
};
use sectopk_protocols::{
    MultiplexServer, ProtocolError, S1Request, SessionId, TcpCloudServer, TcpServerConfig,
};
use sectopk_storage::{ObjectId, Relation, Row};
use sectopk_tests::{TEST_EHL_KEYS, TEST_MODULUS_BITS};

/// The worked example every suite shares (transport_equivalence uses the same rows).
fn fixed_relation() -> Relation {
    Relation::new(
        vec!["r1".into(), "r2".into(), "r3".into()],
        vec![
            Row { id: ObjectId(1), values: vec![10, 3, 2] },
            Row { id: ObjectId(2), values: vec![8, 8, 0] },
            Row { id: ObjectId(3), values: vec![5, 7, 6] },
            Row { id: ObjectId(4), values: vec![3, 2, 8] },
            Row { id: ObjectId(5), values: vec![1, 1, 1] },
        ],
    )
}

fn fixture(seed: u64) -> (DataOwner, Outsourced) {
    let mut rng = StdRng::seed_from_u64(seed);
    let owner = DataOwner::new(TEST_MODULUS_BITS, TEST_EHL_KEYS, &mut rng).expect("keygen");
    let (outsourced, _) = owner.outsource(&fixed_relation(), &mut rng).expect("encryption");
    (owner, outsourced)
}

fn bind_server(workers: usize) -> TcpCloudServer {
    // `park_ttl` zero: these tests assert the *fail-fast* contract (no retry policy on
    // the clients), so a severed session must be reaped immediately rather than parked
    // for resumption — `tests/tcp_resume.rs` covers the parking path.
    TcpCloudServer::serve_pool(
        "127.0.0.1:0",
        Arc::new(MultiplexServer::new(workers)),
        TcpServerConfig::default().with_park_ttl(Duration::ZERO),
    )
    .expect("bind ephemeral loopback listener")
}

fn fixed_query() -> Query {
    Query::top_k(2)
        .attribute_indices([0, 1, 2])
        .variant(VariantChoice::Fixed(QueryVariant::Full))
        .build()
        .expect("query builds")
}

/// Wait until `cond` holds, failing the test after a generous deadline.  Reaping is
/// asynchronous (the bridge thread observes the severed socket on its next read), so
/// assertions about server-side state must poll.
fn eventually(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn socket_drop_surfaces_transport_error_and_session_is_reaped() {
    let server = bind_server(2);
    let addr = server.local_addr().to_string();
    let (owner, outsourced) = fixture(0xDEAD_0001);
    let victim_id = SessionId(77);

    let mut victim = owner
        .connect_remote_with(
            &outsourced,
            &addr,
            0xBEEF,
            true,
            TcpOptions::default().with_session(victim_id),
        )
        .expect("victim connects with an explicit session id");

    // Round 1 proves the wire is live before the injection: a mis-sequenced aggregate
    // travels to S2 and comes back as a *remote* typed error frame, not a dead socket.
    let err = victim
        .clouds_mut()
        .raw_round_trip(S1Request::EqAggregate { rows: 2, cols: 2, want: Default::default() })
        .expect_err("mis-sequenced aggregate must fail");
    assert!(matches!(err, ProtocolError::Remote(_)), "expected a remote frame, got {err:?}");

    // Injection: sever the victim's socket server-side, mid-session.
    assert!(server.drop_session(victim_id), "the victim's connection is registered");

    // Round 2 dies on the wire.  The failure is the *typed* transport error — the
    // client neither panics nor fabricates an S2 response.
    let err = victim
        .clouds_mut()
        .raw_round_trip(S1Request::EqAggregate { rows: 2, cols: 2, want: Default::default() })
        .expect_err("round trip over a severed socket must fail");
    assert!(matches!(err, ProtocolError::Transport(_)), "expected Transport, got {err:?}");

    // A full query through the Session front door fails the same way: `Err`, so no
    // partial `ResolvedTopK` can escape, and the error chains back to the transport.
    let err = victim.execute(&fixed_query()).expect_err("query over a dead socket must fail");
    assert!(
        matches!(&err, sectopk_core::SecTopKError::Protocol(ProtocolError::Transport(_))),
        "expected a wrapped transport error, got {err:?}"
    );

    // The server reaps the carcass: the bridge thread deregisters the connection and
    // frees the pool slot, so the *same explicit id* becomes connectable again.  (A
    // live id is rejected at the handshake, so a successful reconnect is proof.)
    eventually("victim connection deregistered", || server.active_sessions() == 0);
    let mut revenant = owner
        .connect_remote_with(
            &outsourced,
            &addr,
            0xBEEF,
            true,
            TcpOptions::default().with_session(victim_id),
        )
        .expect("the reaped session id is free for reuse");
    let resolved = revenant.execute(&fixed_query()).expect("reused id serves a full query");
    assert_eq!(resolved.results.len(), 2);
}

#[test]
fn clean_neighbour_is_byte_identical_despite_a_dying_peer() {
    let server = bind_server(2);
    let addr = server.local_addr().to_string();
    let (owner, outsourced) = fixture(0xDEAD_0002);
    let query = fixed_query();

    // Reference: the same seeds through the in-process transport, no TCP anywhere.
    let mut reference = owner
        .connect_with(&outsourced, 0xF00D, TransportKind::InProcess, true)
        .expect("in-process reference session");
    let expected = reference.execute(&query).expect("reference query");

    // A victim and a clean neighbour share the listener.  The victim dies mid-session;
    // the neighbour then runs the full query and must match the reference bit for bit.
    let mut victim = owner
        .connect_remote_with(
            &outsourced,
            &addr,
            0xABAD,
            true,
            TcpOptions::default().with_session(SessionId(13)),
        )
        .expect("victim connects");
    let mut neighbour =
        owner.connect_remote(&outsourced, &addr, 0xF00D).expect("neighbour connects");

    assert!(server.drop_session(SessionId(13)), "sever the victim");
    let err = victim
        .clouds_mut()
        .raw_round_trip(S1Request::EqAggregate { rows: 1, cols: 1, want: Default::default() })
        .expect_err("victim is dead");
    assert!(matches!(err, ProtocolError::Transport(_)), "expected Transport, got {err:?}");
    eventually("victim reaped, neighbour still connected", || server.active_sessions() == 1);

    let resolved = neighbour.execute(&query).expect("neighbour query survives the dying peer");

    // Byte identity end to end: same resolved objects and bounds, same channel
    // accounting, same leakage ledgers on both clouds.
    assert_eq!(resolved.results, expected.results, "resolved top-k diverged");
    assert_eq!(
        resolved.outcome.top_k, expected.outcome.top_k,
        "encrypted result ciphertexts diverged"
    );
    assert_eq!(neighbour.metrics(), reference.metrics(), "channel metrics diverged");
    assert_eq!(
        neighbour.s1_ledger().events(),
        reference.s1_ledger().events(),
        "S1 ledgers diverged"
    );
    assert_eq!(
        neighbour.s2_ledger().events(),
        reference.s2_ledger().events(),
        "S2 ledgers diverged"
    );
}
