//! Executable check of Theorem 9.2's leakage profiles: after running each query variant,
//! each cloud's recorded view contains only the observations its profile allows, and the
//! optimisations' extra leakage (uniqueness pattern) appears exactly where §10 says it
//! does.

use sectopk_core::{check_leakage, profile_for, QueryConfig, QueryVariant};
use sectopk_datasets::fig3_relation;
use sectopk_storage::TopKQuery;
use sectopk_tests::{harness, run_query};

#[test]
fn full_privacy_view_matches_the_profile() {
    let relation = fig3_relation();
    let mut h = harness(relation, 100);
    let query = TopKQuery::sum(vec![0, 1, 2], 2);
    let (_, _) = run_query(&mut h, &query, &QueryConfig::full());

    check_leakage(h.session.clouds(), QueryVariant::Full).expect("Qry_F leakage profile");

    // S1 must not have learned the uniqueness pattern under full privacy.
    assert_eq!(h.session.clouds().s1_ledger().count_kind("unique_count"), 0);
    // S1 learned the query pattern and the halting depth exactly once each.
    assert_eq!(h.session.clouds().s1_ledger().count_kind("query_issued"), 1);
    assert_eq!(h.session.clouds().s1_ledger().count_kind("halting_depth"), 1);
    // S2 learned equality bits (the EP^d pattern) and nothing that identifies objects.
    assert!(h.session.clouds().s2_ledger().count_kind("equality_bit") > 0);
    assert_eq!(h.session.clouds().s2_ledger().count_kind("unique_count"), 0);
}

#[test]
fn dup_elim_reveals_the_uniqueness_pattern_to_s1_only() {
    let relation = fig3_relation();
    let mut h = harness(relation, 101);
    let query = TopKQuery::sum(vec![0, 1, 2], 2);
    let (_, outcome) = run_query(&mut h, &query, &QueryConfig::dup_elim());

    check_leakage(h.session.clouds(), QueryVariant::DupElim).expect("Qry_E leakage profile");
    assert!(h.session.clouds().s1_ledger().count_kind("unique_count") > 0);
    assert_eq!(h.session.clouds().s2_ledger().count_kind("unique_count"), 0);
    assert!(outcome.stats.depths_scanned > 0);

    // The same execution would violate the stricter full-privacy profile.
    assert!(check_leakage(h.session.clouds(), QueryVariant::Full).is_err());
}

#[test]
fn batched_profile_holds_and_checks_are_sparser() {
    let relation = fig3_relation();
    let mut h = harness(relation, 102);
    let query = TopKQuery::sum(vec![0, 1, 2], 2);

    let (_, every_depth) = run_query(&mut h, &query, &QueryConfig::dup_elim());
    check_leakage(h.session.clouds(), QueryVariant::DupElim).expect("Qry_E profile");
    let (_, batched) = run_query(&mut h, &query, &QueryConfig::batched(4));
    check_leakage(h.session.clouds(), QueryVariant::Batched { p: 4 }).expect("Qry_Ba profile");

    // Batching runs at most ⌈d/p⌉ halting checks instead of one per depth.
    assert!(batched.stats.halting_checks <= every_depth.stats.halting_checks);
}

#[test]
fn s2_equality_pattern_counts_are_bounded_by_the_scan() {
    // The number of equality bits S2 sees is bounded by the pairwise tests the scanned
    // depths can generate — a coarse but executable version of "the simulator can
    // generate S2's view from EP^d alone".
    let relation = fig3_relation();
    let n = relation.len();
    let mut h = harness(relation, 103);
    let m = 3usize;
    let query = TopKQuery::sum(vec![0, 1, 2], 2);
    let (_, outcome) = run_query(&mut h, &query, &QueryConfig::full());
    let d = outcome.stats.depths_scanned;

    let (equal, total) = sectopk_core::leakage::s2_equality_pattern_summary(h.session.clouds());
    assert!(equal <= total);
    // Per depth: SecWorst m(m−1), SecBest ≤ m(m−1)·d, SecDedup m(m−1)/2, SecUpdate ≤ m·|T|
    // with |T| ≤ m·d.  A generous global bound:
    let bound = d * (m * m + m * m * d + m * m + m * m * d) + n * n;
    assert!(total <= bound, "S2 saw {total} equality bits, more than the structural bound {bound}");
}

#[test]
fn profiles_are_consistent_with_the_paper_table() {
    // Sanity on the profile constants themselves.
    let full = profile_for(QueryVariant::Full);
    assert!(full.s1_allowed.contains(&"query_issued"));
    assert!(full.s1_allowed.contains(&"halting_depth"));
    assert!(!full.s1_allowed.contains(&"equality_bit"));
    assert!(full.s2_allowed.contains(&"equality_bit"));
    assert!(!full.s2_allowed.contains(&"halting_depth"));
}
