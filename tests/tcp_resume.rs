//! Session resumption through the public API: a TCP session whose connection dies
//! mid-query — by injected fault or by server-side severing — transparently reconnects,
//! resumes its parked server-side state, and finishes with results, channel metrics and
//! leakage ledgers **byte-identical** to a run where the connection never dropped.
//!
//! The exactly-once contract is asserted from both ends:
//!
//! * a request whose *reply* was lost is answered from the server's per-session replay
//!   cache (`MultiplexServer::replayed_replies` ticks; the engine never re-executes);
//! * a request that never *reached* the server is re-executed exactly once (the replay
//!   counter stays flat).
//!
//! `tests/tcp_transport.rs` covers the complementary fail-fast contract (no
//! [`RetryPolicy`], `park_ttl` zero): severed sessions surface typed errors and are
//! reaped immediately.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::{
    DataOwner, FaultPlan, Outsourced, Query, QueryVariant, RetryPolicy, Session, TcpOptions,
    TransportKind, VariantChoice,
};
use sectopk_protocols::{MultiplexServer, SessionId, TcpCloudServer, TcpServerConfig};
use sectopk_storage::{ObjectId, Relation, Row};
use sectopk_tests::{TEST_EHL_KEYS, TEST_MODULUS_BITS};

/// The worked example every transport suite shares.
fn fixed_relation() -> Relation {
    Relation::new(
        vec!["r1".into(), "r2".into(), "r3".into()],
        vec![
            Row { id: ObjectId(1), values: vec![10, 3, 2] },
            Row { id: ObjectId(2), values: vec![8, 8, 0] },
            Row { id: ObjectId(3), values: vec![5, 7, 6] },
            Row { id: ObjectId(4), values: vec![3, 2, 8] },
            Row { id: ObjectId(5), values: vec![1, 1, 1] },
        ],
    )
}

fn fixture(seed: u64) -> (DataOwner, Outsourced) {
    let mut rng = StdRng::seed_from_u64(seed);
    let owner = DataOwner::new(TEST_MODULUS_BITS, TEST_EHL_KEYS, &mut rng).expect("keygen");
    let (outsourced, _) = owner.outsource(&fixed_relation(), &mut rng).expect("encryption");
    (owner, outsourced)
}

fn bind_server(workers: usize, config: TcpServerConfig) -> TcpCloudServer {
    TcpCloudServer::serve_pool("127.0.0.1:0", Arc::new(MultiplexServer::new(workers)), config)
        .expect("bind ephemeral loopback listener")
}

fn fixed_query() -> Query {
    Query::top_k(2)
        .attribute_indices([0, 1, 2])
        .variant(VariantChoice::Fixed(QueryVariant::Full))
        .build()
        .expect("query builds")
}

/// A tight-but-patient retry policy for loopback tests.
fn test_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 10,
        backoff: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
        deadline: Duration::from_secs(30),
    }
}

fn eventually(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Execute `queries` full queries on a fresh in-process session and return everything
/// deterministic about the run — the oracle every resumed TCP run must match.
fn reference_run(
    owner: &DataOwner,
    outsourced: &Outsourced,
    seed: u64,
    queries: usize,
) -> Vec<sectopk_core::ResolvedTopK> {
    let mut session = owner
        .connect_with(outsourced, seed, TransportKind::InProcess, true)
        .expect("in-process reference session");
    (0..queries).map(|_| session.execute(&fixed_query()).expect("reference query")).collect()
}

#[test]
fn server_side_drop_between_queries_resumes_transparently_and_byte_identically() {
    let server = bind_server(2, TcpServerConfig::default());
    let addr = server.local_addr().to_string();
    let (owner, outsourced) = fixture(0x7E5A_0001);
    let seed = 0x51ED;

    let expected = reference_run(&owner, &outsourced, seed, 2);

    let mut session = owner
        .connect_remote_with(
            &outsourced,
            &addr,
            seed,
            true,
            TcpOptions::default().with_session(SessionId(7)).with_retry(test_retry()),
        )
        .expect("retry-enabled session connects");

    let first = session.execute(&fixed_query()).expect("query before the drop");

    // Sever the connection server-side.  The session parks (default `park_ttl` is
    // generous); the client notices only on its next exchange, reconnects with its
    // resume token, and the query runs to completion as if nothing happened.
    assert!(server.drop_session(SessionId(7)), "the session's connection is registered");
    let second = session.execute(&fixed_query()).expect("query across the drop");

    assert_eq!(first.results, expected[0].results, "pre-drop results diverge");
    assert_eq!(second.results, expected[1].results, "post-drop results diverge");
    assert_eq!(
        second.outcome.top_k, expected[1].outcome.top_k,
        "post-drop encrypted result ciphertexts diverge"
    );
    assert_eq!(server.resumed_sessions(), 1, "exactly one resumption");

    // Accounting survived the drop bit for bit: same metrics and ledgers as a session
    // that never lost its socket.
    let mut unbroken = owner
        .connect_with(&outsourced, seed, TransportKind::InProcess, true)
        .expect("unbroken oracle");
    for _ in 0..2 {
        unbroken.execute(&fixed_query()).expect("oracle query");
    }
    assert_eq!(session.metrics(), unbroken.metrics(), "channel metrics diverge");
    assert_eq!(session.s1_ledger().events(), unbroken.s1_ledger().events(), "S1 ledger diverges");
    assert_eq!(session.s2_ledger().events(), unbroken.s2_ledger().events(), "S2 ledger diverges");
}

#[test]
fn lost_reply_is_answered_from_the_replay_cache_not_reexecuted() {
    let server = bind_server(2, TcpServerConfig::default());
    let addr = server.local_addr().to_string();
    let (owner, outsourced) = fixture(0x7E5A_0002);
    let seed = 0xCAFE;

    let expected = reference_run(&owner, &outsourced, seed, 1);

    // Every 5th logical frame: the request is written, then the connection is severed
    // before the reply is read — the reply is lost in flight.  The resumed connection
    // resends the same sequence number and must be answered from the server's replay
    // cache; re-executing would double every ledger event of that exchange.
    let faults = FaultPlan::none().with_drop_after_send_every(5);
    let mut session = owner
        .connect_remote_with(
            &outsourced,
            &addr,
            seed,
            true,
            TcpOptions::default().with_retry(test_retry()).with_faults(faults),
        )
        .expect("fault-injected session connects");

    let resolved = session.execute(&fixed_query()).expect("query under lost-reply faults");
    assert_eq!(resolved.results, expected[0].results, "results diverge under faults");
    assert!(
        server.pool().replayed_replies() >= 1,
        "at least one retried request must be served from the replay cache"
    );
    assert!(server.resumed_sessions() >= 1, "the drops really reconnected");

    let mut oracle = owner
        .connect_with(&outsourced, seed, TransportKind::InProcess, true)
        .expect("fault-free oracle");
    oracle.execute(&fixed_query()).expect("oracle query");
    assert_eq!(session.metrics(), oracle.metrics(), "a replayed reply must not re-meter");
    assert_eq!(
        session.s2_ledger().events(),
        oracle.s2_ledger().events(),
        "a replayed reply must not re-execute (S2 ledger would double)"
    );
}

#[test]
fn lost_request_is_reexecuted_exactly_once_with_batching_all_or_nothing() {
    let server = bind_server(2, TcpServerConfig::default());
    let addr = server.local_addr().to_string();
    let (owner, outsourced) = fixture(0x7E5A_0003);
    let seed = 0xB00C;

    let expected = reference_run(&owner, &outsourced, seed, 1);

    // Every 4th logical frame is severed *before* the request is written: the server
    // never saw it, so the resend must execute it — once.  With batching on, the lost
    // frame is a whole `Batch` of sub-requests, so this also proves the batch is
    // all-or-nothing: no half-applied batch survives on the server.
    let faults = FaultPlan::none().with_drop_before_send_every(4);
    let mut session = owner
        .connect_remote_with(
            &outsourced,
            &addr,
            seed,
            true,
            TcpOptions::default().with_retry(test_retry()).with_faults(faults),
        )
        .expect("fault-injected session connects");

    let resolved = session.execute(&fixed_query()).expect("query under lost-request faults");
    assert_eq!(resolved.results, expected[0].results, "results diverge under faults");
    assert_eq!(
        server.pool().replayed_replies(),
        0,
        "a request the server never saw has nothing to replay"
    );
    assert!(server.resumed_sessions() >= 1, "the drops really reconnected");

    let mut oracle = owner
        .connect_with(&outsourced, seed, TransportKind::InProcess, true)
        .expect("fault-free oracle");
    oracle.execute(&fixed_query()).expect("oracle query");
    assert_eq!(session.metrics(), oracle.metrics(), "re-executed requests must meter once");
    assert_eq!(
        session.s2_ledger().events(),
        oracle.s2_ledger().events(),
        "re-execution must happen exactly once (S2 ledger would double)"
    );
}

#[test]
fn park_ttl_expiry_reaps_the_parked_session_and_frees_its_id() {
    let config = TcpServerConfig::default().with_park_ttl(Duration::from_millis(50));
    let server = bind_server(1, config);
    let addr = server.local_addr().to_string();
    let (owner, outsourced) = fixture(0x7E5A_0004);

    let mut session = owner
        .connect_remote_with(
            &outsourced,
            &addr,
            0xD1ED,
            true,
            TcpOptions::default().with_session(SessionId(21)),
        )
        .expect("session connects");
    session.execute(&fixed_query()).expect("query before the drop");

    assert!(server.drop_session(SessionId(21)), "sever the session");
    eventually("session parked", || server.parked_sessions() == 1);
    eventually("park TTL expired and session reaped", || {
        server.parked_sessions() == 0 && server.active_sessions() == 0
    });

    // The id is free again: a *fresh* hello (no resume token) claims it.
    let mut revenant = owner
        .connect_remote_with(
            &outsourced,
            &addr,
            0xD1ED,
            true,
            TcpOptions::default().with_session(SessionId(21)),
        )
        .expect("expired session id is free for reuse");
    let resolved = revenant.execute(&fixed_query()).expect("reused id serves a full query");
    assert_eq!(resolved.results.len(), 2);
    assert_eq!(server.resumed_sessions(), 0, "reuse after expiry is a fresh session, not a resume");
}
