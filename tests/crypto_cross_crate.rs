//! Property-based tests on the cryptographic substrate as used *across* crates: Paillier
//! and Damgård–Jurik homomorphic identities, the EHL equality semantics, and the
//! interplay of blinding (Algorithm 8) with the homomorphic operations.  A single small
//! key pair is shared across all cases so the suite stays fast.

use std::sync::OnceLock;

use num_bigint::BigUint;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_crypto::damgard_jurik::{DjPublicKey, DjSecretKey};
use sectopk_crypto::paillier::{generate_keypair, PaillierPublicKey, PaillierSecretKey};
use sectopk_crypto::prf::PrfKey;
use sectopk_ehl::EhlEncoder;

struct SharedKeys {
    pk: PaillierPublicKey,
    sk: PaillierSecretKey,
    dj_pk: DjPublicKey,
    dj_sk: DjSecretKey,
    encoder: EhlEncoder,
}

fn keys() -> &'static SharedKeys {
    static KEYS: OnceLock<SharedKeys> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let (pk, sk) = generate_keypair(128, &mut rng).unwrap();
        let dj_pk = DjPublicKey::from_paillier(&pk);
        let dj_sk = DjSecretKey::from_paillier(&sk);
        let prf_keys: Vec<PrfKey> = (0..4u8).map(|i| PrfKey([i + 1; 32])).collect();
        SharedKeys { pk, sk, dj_pk, dj_sk, encoder: EhlEncoder::new(&prf_keys) }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn paillier_addition_is_homomorphic(a in any::<u64>(), b in any::<u64>(), seed in any::<u64>()) {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = k.pk.encrypt_u64(a, &mut rng).unwrap();
        let cb = k.pk.encrypt_u64(b, &mut rng).unwrap();
        let sum = k.pk.add(&ca, &cb);
        let expected = (BigUint::from(a) + BigUint::from(b)) % k.pk.n();
        prop_assert_eq!(k.sk.decrypt(&sum).unwrap(), expected);
    }

    #[test]
    fn paillier_scalar_multiplication_is_homomorphic(a in any::<u32>(), w in 0u32..1000, seed in any::<u64>()) {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = k.pk.encrypt_u64(a as u64, &mut rng).unwrap();
        let scaled = k.pk.mul_plain(&ca, &BigUint::from(w));
        prop_assert_eq!(
            k.sk.decrypt(&scaled).unwrap(),
            (BigUint::from(a) * BigUint::from(w)) % k.pk.n()
        );
    }

    #[test]
    fn paillier_signed_subtraction(a in -100_000i64..100_000, b in -100_000i64..100_000, seed in any::<u64>()) {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = k.pk.encrypt_i64(a, &mut rng).unwrap();
        let cb = k.pk.encrypt_i64(b, &mut rng).unwrap();
        let diff = k.pk.sub(&ca, &cb);
        prop_assert_eq!(k.sk.decrypt_signed(&diff).unwrap(), num_bigint::BigInt::from(a - b));
    }

    #[test]
    fn rerandomization_never_changes_the_plaintext(v in any::<u64>(), seed in any::<u64>()) {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = k.pk.encrypt_u64(v, &mut rng).unwrap();
        let r = k.pk.rerandomize(&c, &mut rng);
        prop_assert_ne!(&r, &c);
        prop_assert_eq!(k.sk.decrypt_u64(&r).unwrap(), v);
    }

    #[test]
    fn layered_identity_holds_for_arbitrary_pairs(m1 in any::<u32>(), m2 in any::<u32>(), seed in any::<u64>()) {
        // E2(Enc(m1))^{Enc(m2)} decrypts (both layers) to m1 + m2 — the identity every
        // selection step of the sub-protocols relies on.
        let k = keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let inner1 = k.pk.encrypt_u64(m1 as u64, &mut rng).unwrap();
        let inner2 = k.pk.encrypt_u64(m2 as u64, &mut rng).unwrap();
        let layered = k.dj_pk.encrypt_ciphertext(&inner1, &mut rng).unwrap();
        let combined = k.dj_pk.mul_by_ciphertext(&layered, &inner2);
        prop_assert_eq!(
            k.dj_sk.decrypt_both_layers(&combined).unwrap(),
            BigUint::from(m1 as u64 + m2 as u64)
        );
    }

    #[test]
    fn ehl_equality_agrees_with_object_equality(a in any::<u64>(), b in any::<u64>(), seed in any::<u64>()) {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let ea = k.encoder.encode(&a.to_be_bytes(), &k.pk, &mut rng).unwrap();
        let eb = k.encoder.encode(&b.to_be_bytes(), &k.pk, &mut rng).unwrap();
        let test = ea.eq_test(&eb, &k.pk, &mut rng);
        prop_assert_eq!(k.sk.is_zero(&test).unwrap(), a == b);
    }

    #[test]
    fn ehl_blinding_round_trips(object in any::<u64>(), seed in any::<u64>()) {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let e = k.encoder.encode(&object.to_be_bytes(), &k.pk, &mut rng).unwrap();
        let alphas: Vec<BigUint> = (0..e.len())
            .map(|_| sectopk_crypto::bigint::random_below(&mut rng, k.pk.n()))
            .collect();
        let restored = e.blind(&alphas, &k.pk).unblind(&alphas, &k.pk);
        let fresh = k.encoder.encode(&object.to_be_bytes(), &k.pk, &mut rng).unwrap();
        prop_assert!(k.sk.is_zero(&restored.eq_test(&fresh, &k.pk, &mut rng)).unwrap());
    }

    #[test]
    fn signed_representation_round_trips(v in any::<i64>()) {
        let k = keys();
        let n = k.pk.n();
        let unsigned = sectopk_crypto::bigint::from_signed(&num_bigint::BigInt::from(v), n);
        let back = sectopk_crypto::bigint::to_signed(&unsigned, n);
        prop_assert_eq!(back, num_bigint::BigInt::from(v));
    }
}
