//! Public-API surface snapshot for the `sectopk-core` facade.
//!
//! The `Session` / `QueryBuilder` / `SecTopKError` surface is the contract every test,
//! bench, example and downstream consumer builds against.  This test extracts the
//! public item declarations of the facade's source files and compares them against a
//! committed snapshot, so any change to the surface — a removed method, a renamed
//! variant, a signature change — fails loudly in review instead of slipping in
//! silently.
//!
//! To re-bless after an *intentional* surface change:
//!
//! ```text
//! SECTOPK_BLESS=1 cargo test --test api_surface
//! ```
//!
//! and audit the diff of `tests/golden/api_surface.txt` like any other contract change.

use std::fmt::Write as _;
use std::path::Path;

/// The facade source files whose public declarations form the tracked surface.
const FACADE_FILES: &[&str] = &[
    "crates/core/src/lib.rs",
    "crates/core/src/builder.rs",
    "crates/core/src/error.rs",
    "crates/core/src/planner.rs",
    "crates/core/src/session.rs",
    "crates/core/src/scheme.rs",
    "crates/core/src/query.rs",
    "crates/core/src/results.rs",
    "crates/core/src/leakage.rs",
    "crates/core/src/join.rs",
    "crates/protocols/src/tcp.rs",
];

/// True when `line` (already trimmed) declares a public item we track.
fn is_public_declaration(line: &str) -> bool {
    for prefix in [
        "pub fn ",
        "pub struct ",
        "pub enum ",
        "pub trait ",
        "pub type ",
        "pub use ",
        "pub mod ",
        "pub const ",
    ] {
        if line.starts_with(prefix) {
            return true;
        }
    }
    false
}

/// Extract the tracked declarations of one file: one line per item, signatures joined
/// until their opening brace / semicolon so multi-line `fn` signatures stay one entry.
fn extract_surface(source: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut lines = source.lines().peekable();
    let mut in_test_module = false;
    let mut brace_depth: i64 = 0;
    while let Some(raw) = lines.next() {
        let line = raw.trim();
        if line.starts_with("#[cfg(test)]") {
            in_test_module = true;
            brace_depth = 0;
        }
        if in_test_module {
            brace_depth += line.matches('{').count() as i64;
            brace_depth -= line.matches('}').count() as i64;
            if brace_depth <= 0 && line.contains('}') {
                in_test_module = false;
            }
            continue;
        }
        if !is_public_declaration(line) {
            continue;
        }
        // Join continuation lines until the declaration closes.  `pub use` braces are
        // item lists (part of the surface), so those run to their semicolon; other
        // declarations stop at the body opener.
        let is_use = line.starts_with("pub use ");
        let mut declaration = line.to_string();
        let closed = |d: &str| {
            if is_use {
                d.contains(';')
            } else {
                d.contains('{') || d.contains(';') || d.ends_with(')')
            }
        };
        while !closed(&declaration) {
            match lines.next() {
                Some(next) => {
                    declaration.push(' ');
                    declaration.push_str(next.trim());
                }
                None => break,
            }
        }
        // Normalise: cut the body opener (except for `pub use` item lists) and collapse
        // whitespace.
        let declaration = if is_use {
            declaration.trim().to_string()
        } else {
            declaration.split('{').next().unwrap_or(&declaration).trim().to_string()
        };
        let declaration = declaration.split_whitespace().collect::<Vec<_>>().join(" ");
        out.push(declaration);
    }
    out
}

fn render_surface() -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut rendered = String::from(
        "# Public API surface of the sectopk-core facade.\n\
         # Regenerate with: SECTOPK_BLESS=1 cargo test --test api_surface\n",
    );
    for file in FACADE_FILES {
        let source = std::fs::read_to_string(root.join(file))
            .unwrap_or_else(|e| panic!("facade file {file} must exist: {e}"));
        writeln!(rendered, "\n[{file}]").unwrap();
        for item in extract_surface(&source) {
            writeln!(rendered, "{item}").unwrap();
        }
    }
    rendered
}

#[test]
fn facade_surface_matches_the_committed_snapshot() {
    let rendered = render_surface();
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/api_surface.txt");
    if std::env::var("SECTOPK_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, &rendered).expect("write surface snapshot");
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing API surface snapshot {} ({e}); run with SECTOPK_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        committed, rendered,
        "the sectopk-core public API surface changed — if this is intentional, re-bless \
         with SECTOPK_BLESS=1 and audit the diff of tests/golden/api_surface.txt"
    );
}

#[test]
fn the_facade_exports_the_one_front_door() {
    // Compile-time spot checks that the contract items exist with the expected shapes
    // (the snapshot catches renames; this catches accidental re-export removal).
    use sectopk_core::{DataOwner, Query, Session};

    fn assert_session_object_safe(_: &mut dyn Session) {}
    let _ = assert_session_object_safe;

    let _builder_entry: fn(usize) -> sectopk_core::QueryBuilder = Query::top_k;
    let _connect = DataOwner::connect;
    let _outsource = DataOwner::outsource::<rand::rngs::StdRng>;
    let _execute_engine = sectopk_core::execute_with_clouds::<rand::rngs::StdRng>;
    let _plan: fn(&sectopk_core::PlannerInputs) -> sectopk_core::PlanDecision = sectopk_core::plan;
}
