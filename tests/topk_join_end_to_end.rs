//! End-to-end secure top-k join (§12): encryption of both relations, token generation,
//! SecJoin + SecFilter + encrypted top-k selection, checked against a plaintext join.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sectopk_core::{encrypt_for_join, join_token, top_k_join, JoinQuery};
use sectopk_crypto::MasterKeys;
use sectopk_protocols::TwoClouds;
use sectopk_storage::{ObjectId, Relation, Row};
use sectopk_tests::{TEST_EHL_KEYS, TEST_MODULUS_BITS};

/// Plaintext reference: all matching (left, right) row pairs with their join scores,
/// sorted by score descending.
fn plaintext_join_scores(left: &Relation, right: &Relation, q: &JoinQuery) -> Vec<u64> {
    let mut scores = Vec::new();
    for l in left.rows() {
        for r in right.rows() {
            if l.values[q.join_left] == r.values[q.join_right] {
                scores.push(l.values[q.score_left] + r.values[q.score_right]);
            }
        }
    }
    scores.sort_unstable_by(|a, b| b.cmp(a));
    scores
}

fn setup(seed: u64) -> (MasterKeys, TwoClouds, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let keys = MasterKeys::generate(TEST_MODULUS_BITS, TEST_EHL_KEYS, &mut rng).unwrap();
    let clouds = TwoClouds::new(&keys, seed ^ 0xFEED).unwrap();
    (keys, clouds, rng)
}

#[test]
fn join_example_from_section_12() {
    // Q = SELECT * FROM R1, R2 WHERE R1.A = R2.B ORDER BY R1.C + R2.D STOP AFTER k.
    let (keys, mut clouds, mut rng) = setup(500);
    let left = Relation::new(
        vec!["A".into(), "C".into()],
        vec![
            Row { id: ObjectId(1), values: vec![7, 50] },
            Row { id: ObjectId(2), values: vec![8, 10] },
            Row { id: ObjectId(3), values: vec![7, 20] },
        ],
    );
    let right = Relation::new(
        vec!["B".into(), "D".into()],
        vec![
            Row { id: ObjectId(1), values: vec![7, 5] },
            Row { id: ObjectId(2), values: vec![9, 99] },
        ],
    );
    let q = JoinQuery { join_left: 0, join_right: 0, score_left: 1, score_right: 1, k: 2 };

    let enc_left = encrypt_for_join(&left, &keys, "join/left", &mut rng).unwrap();
    let enc_right = encrypt_for_join(&right, &keys, "join/right", &mut rng).unwrap();
    let token = join_token(&keys, 2, 2, &q, &[1], &[1]).unwrap();
    let outcome = top_k_join(&mut clouds, &enc_left, &enc_right, &token).unwrap();

    let expected = plaintext_join_scores(&left, &right, &q);
    assert_eq!(outcome.matching_pairs, expected.len());
    assert_eq!(outcome.pairs_considered, 6);

    let scores: Vec<u64> =
        outcome.top_k.iter().map(|t| keys.paillier_secret.decrypt_u64(&t.score).unwrap()).collect();
    assert_eq!(scores, expected[..2.min(expected.len())].to_vec());
}

#[test]
fn random_joins_match_the_plaintext_reference() {
    let mut rng = StdRng::seed_from_u64(600);
    for trial in 0..3u64 {
        let (keys, mut clouds, mut local_rng) = setup(601 + trial);
        let n_left = rng.gen_range(3..6);
        let n_right = rng.gen_range(3..6);
        // Join keys drawn from a tiny domain so matches actually occur.
        let left = Relation::from_rows(
            (0..n_left)
                .map(|i| Row {
                    id: ObjectId(i as u64),
                    values: vec![rng.gen_range(0..4), rng.gen_range(0..30)],
                })
                .collect(),
        );
        let right = Relation::from_rows(
            (0..n_right)
                .map(|i| Row {
                    id: ObjectId(i as u64),
                    values: vec![rng.gen_range(0..4), rng.gen_range(0..30)],
                })
                .collect(),
        );
        let k = rng.gen_range(1..4);
        let q = JoinQuery { join_left: 0, join_right: 0, score_left: 1, score_right: 1, k };

        let enc_left = encrypt_for_join(&left, &keys, "join/left", &mut local_rng).unwrap();
        let enc_right = encrypt_for_join(&right, &keys, "join/right", &mut local_rng).unwrap();
        let token = join_token(&keys, 2, 2, &q, &[], &[]).unwrap();
        let outcome = top_k_join(&mut clouds, &enc_left, &enc_right, &token).unwrap();

        let expected = plaintext_join_scores(&left, &right, &q);
        assert_eq!(outcome.matching_pairs, expected.len(), "trial {trial}");
        let scores: Vec<u64> = outcome
            .top_k
            .iter()
            .map(|t| keys.paillier_secret.decrypt_u64(&t.score).unwrap())
            .collect();
        assert_eq!(scores, expected[..k.min(expected.len())].to_vec(), "trial {trial}");
    }
}

#[test]
fn join_leaks_only_equality_bits_and_match_count() {
    let (keys, mut clouds, mut rng) = setup(700);
    let left = Relation::from_rows(vec![
        Row { id: ObjectId(1), values: vec![1, 5] },
        Row { id: ObjectId(2), values: vec![2, 6] },
    ]);
    let right = Relation::from_rows(vec![Row { id: ObjectId(1), values: vec![2, 9] }]);
    let q = JoinQuery { join_left: 0, join_right: 0, score_left: 1, score_right: 1, k: 1 };
    let enc_left = encrypt_for_join(&left, &keys, "join/left", &mut rng).unwrap();
    let enc_right = encrypt_for_join(&right, &keys, "join/right", &mut rng).unwrap();
    let token = join_token(&keys, 2, 2, &q, &[], &[]).unwrap();
    let _ = top_k_join(&mut clouds, &enc_left, &enc_right, &token).unwrap();

    assert!(clouds.s2_ledger().only_contains(&[
        "equality_bit",
        "join_match_count",
        "blinded_sign"
    ]));
    assert!(clouds.s1_ledger().only_contains(&["join_match_count", "comparison_bit"]));
    // Both parties learned the same match count (1), and nothing about which pair it was.
    assert_eq!(clouds.s1_ledger().count_kind("join_match_count"), 1);
}
