//! The three query variants (Qry_F, Qry_E, Qry_Ba) must return the same (valid) top-k
//! answers — the optimisations of §10 trade privacy and speed, never correctness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sectopk_core::QueryConfig;
use sectopk_datasets::{fig3_relation, DatasetKind};
use sectopk_storage::{ObjectId, Relation, Row, TopKQuery};
use sectopk_tests::{assert_valid_top_k, harness, run_query};

fn score_set(relation: &Relation, attrs: &[usize], ids: &[ObjectId]) -> Vec<u128> {
    let mut scores: Vec<u128> =
        ids.iter().map(|&id| relation.aggregate_score(id, attrs, &[]).unwrap()).collect();
    scores.sort_unstable();
    scores
}

#[test]
fn all_three_variants_agree_on_fig3() {
    let relation = fig3_relation();
    let attrs = vec![0, 1, 2];
    let query = TopKQuery::sum(attrs.clone(), 2);

    let mut h = harness(relation.clone(), 21);
    let (full_ids, full) = run_query(&mut h, &query, &QueryConfig::full());
    let (elim_ids, elim) = run_query(&mut h, &query, &QueryConfig::dup_elim());
    let (batched_ids, batched) = run_query(&mut h, &query, &QueryConfig::batched(2));

    for (ids, name) in [(&full_ids, "Qry_F"), (&elim_ids, "Qry_E"), (&batched_ids, "Qry_Ba")] {
        assert_valid_top_k(&relation, &attrs, &[], 2, ids, name);
    }
    assert_eq!(score_set(&relation, &attrs, &full_ids), score_set(&relation, &attrs, &elim_ids));
    assert_eq!(score_set(&relation, &attrs, &full_ids), score_set(&relation, &attrs, &batched_ids));

    // Qry_F keeps the tracked list at m·d items; Qry_E keeps only distinct objects.
    assert!(full.stats.final_tracked_len >= elim.stats.final_tracked_len);
    // The batched variant runs fewer halting checks per scanned depth.
    assert!(batched.stats.halting_checks <= elim.stats.halting_checks);
}

#[test]
fn variants_agree_on_a_duplicate_heavy_dataset() {
    // The insurance-shaped generator produces heavily duplicated attribute values, which
    // exercises SecDedup / SecDupElim where the variants differ the most.
    let spec = DatasetKind::Insurance.spec().with_rows(8);
    let relation = sectopk_datasets::generate(&spec, 5);
    let attrs = vec![0, 1];
    let query = TopKQuery::sum(attrs.clone(), 3);

    let mut h = harness(relation.clone(), 22);
    let (full_ids, _) = run_query(&mut h, &query, &QueryConfig::full());
    let (elim_ids, _) = run_query(&mut h, &query, &QueryConfig::dup_elim());
    let (batched_ids, _) = run_query(&mut h, &query, &QueryConfig::batched(3));

    assert_valid_top_k(&relation, &attrs, &[], 3, &full_ids, "insurance Qry_F");
    assert_valid_top_k(&relation, &attrs, &[], 3, &elim_ids, "insurance Qry_E");
    assert_valid_top_k(&relation, &attrs, &[], 3, &batched_ids, "insurance Qry_Ba");
}

#[test]
fn variants_agree_on_random_relations() {
    let mut rng = StdRng::seed_from_u64(33);
    for trial in 0..3 {
        let n = rng.gen_range(6..10);
        let rows: Vec<Row> = (0..n)
            .map(|i| Row {
                id: ObjectId(i as u64),
                values: (0..2).map(|_| rng.gen_range(0..20)).collect(),
            })
            .collect();
        let relation = Relation::from_rows(rows);
        let attrs = vec![0, 1];
        let k = 2;
        let query = TopKQuery::sum(attrs.clone(), k);

        let mut h = harness(relation.clone(), 700 + trial);
        let (a, _) = run_query(&mut h, &query, &QueryConfig::full());
        let (b, _) = run_query(&mut h, &query, &QueryConfig::dup_elim());
        let (c, _) = run_query(&mut h, &query, &QueryConfig::batched(2));
        assert_eq!(
            score_set(&relation, &attrs, &a),
            score_set(&relation, &attrs, &b),
            "trial {trial}"
        );
        assert_eq!(
            score_set(&relation, &attrs, &a),
            score_set(&relation, &attrs, &c),
            "trial {trial}"
        );
        assert_valid_top_k(&relation, &attrs, &[], k, &a, &format!("trial {trial}"));
    }
}

#[test]
fn batching_parameter_does_not_change_results() {
    let relation = fig3_relation();
    let attrs = vec![0, 1, 2];
    let query = TopKQuery::sum(attrs.clone(), 2);
    let mut h = harness(relation.clone(), 44);
    let mut previous: Option<Vec<u128>> = None;
    for p in [1usize, 2, 4, 5] {
        let (ids, _) = run_query(&mut h, &query, &QueryConfig::batched(p));
        assert_valid_top_k(&relation, &attrs, &[], 2, &ids, &format!("p = {p}"));
        let scores = score_set(&relation, &attrs, &ids);
        if let Some(prev) = &previous {
            assert_eq!(prev, &scores, "results must not depend on p");
        }
        previous = Some(scores);
    }
}
