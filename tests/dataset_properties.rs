//! Property-based tests on the data layer: relations, sorted lists, plaintext NRA and
//! the dataset generators.  These use `proptest` to explore the input space of shapes the
//! secure protocols are later run on.

use proptest::prelude::*;

use sectopk_core::nra_top_k;
use sectopk_datasets::{generate, DatasetKind, QueryWorkload, WorkloadSpec};
use sectopk_storage::{ObjectId, Relation, Row};

/// Strategy: a small random relation (n ∈ [1, 25], M ∈ [1, 5], values < 100).
fn relation_strategy() -> impl Strategy<Value = Relation> {
    (1usize..=25, 1usize..=5).prop_flat_map(|(n, m)| {
        proptest::collection::vec(proptest::collection::vec(0u64..100, m..=m), n..=n).prop_map(
            move |matrix| {
                Relation::from_rows(
                    matrix
                        .into_iter()
                        .enumerate()
                        .map(|(i, values)| Row { id: ObjectId(i as u64), values })
                        .collect(),
                )
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sorted_lists_are_permutations_of_the_relation(relation in relation_strategy()) {
        let sorted = relation.sorted_lists();
        prop_assert_eq!(sorted.num_lists(), relation.num_attributes());
        prop_assert_eq!(sorted.depth(), relation.len());
        for attr in 0..relation.num_attributes() {
            let list = sorted.list(attr);
            // Descending order.
            for w in list.windows(2) {
                prop_assert!(w[0].score >= w[1].score);
            }
            // Every object appears exactly once with its own value.
            let mut ids: Vec<ObjectId> = list.iter().map(|i| i.object).collect();
            ids.sort();
            let mut expected: Vec<ObjectId> = relation.rows().iter().map(|r| r.id).collect();
            expected.sort();
            prop_assert_eq!(ids, expected);
            for item in list {
                prop_assert_eq!(relation.value(item.object, attr), Some(item.score));
            }
        }
    }

    #[test]
    fn nra_always_returns_a_valid_top_k(
        relation in relation_strategy(),
        k in 1usize..=8,
        m in 1usize..=5,
    ) {
        let m = m.min(relation.num_attributes());
        let attrs: Vec<usize> = (0..m).collect();
        let outcome = nra_top_k(&relation, &attrs, &[], k);
        let exact = relation.plaintext_top_k(&attrs, &[], k);
        prop_assert_eq!(outcome.top_k.len(), exact.len());
        prop_assert!(outcome.halting_depth <= relation.len());

        let mut nra_scores: Vec<u128> = outcome
            .top_k
            .iter()
            .map(|(id, _)| relation.aggregate_score(*id, &attrs, &[]).unwrap())
            .collect();
        let mut exact_scores: Vec<u128> = exact.iter().map(|(_, s)| *s).collect();
        nra_scores.sort_unstable();
        exact_scores.sort_unstable();
        prop_assert_eq!(nra_scores, exact_scores);
    }

    #[test]
    fn nra_reported_lower_bounds_never_exceed_true_scores(
        relation in relation_strategy(),
        k in 1usize..=5,
    ) {
        let attrs: Vec<usize> = (0..relation.num_attributes()).collect();
        let outcome = nra_top_k(&relation, &attrs, &[], k);
        for (id, lower) in &outcome.top_k {
            let exact = relation.aggregate_score(*id, &attrs, &[]).unwrap();
            prop_assert!(*lower <= exact, "lower bound {lower} > exact {exact}");
        }
    }

    #[test]
    fn plaintext_top_k_is_sorted_and_within_bounds(
        relation in relation_strategy(),
        k in 0usize..=30,
    ) {
        let attrs: Vec<usize> = (0..relation.num_attributes()).collect();
        let top = relation.plaintext_top_k(&attrs, &[], k);
        prop_assert!(top.len() <= k.min(relation.len()));
        for w in top.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn generated_workloads_always_validate(
        queries in 1usize..=20,
        num_attributes in 2usize..=16,
        seed in any::<u64>(),
    ) {
        let spec = WorkloadSpec { queries, m_range: (2, 8), k_range: (2, 20) };
        let workload = QueryWorkload::generate(&spec, num_attributes, seed);
        prop_assert_eq!(workload.queries.len(), queries);
        for q in &workload.queries {
            prop_assert!(q.validate(num_attributes).is_ok());
        }
    }

    #[test]
    fn dataset_generators_produce_requested_shapes(
        rows in 1usize..=200,
        seed in any::<u64>(),
    ) {
        for kind in DatasetKind::ALL {
            let spec = kind.spec().with_rows(rows);
            let relation = generate(&spec, seed);
            prop_assert_eq!(relation.len(), rows);
            prop_assert_eq!(relation.num_attributes(), kind.spec().attributes);
        }
    }
}

#[test]
fn generator_is_stable_across_calls() {
    // Not a proptest: a regression guard that the deterministic seeds stay deterministic,
    // so benchmark figures are reproducible.
    let spec = DatasetKind::Synthetic.spec().with_rows(32);
    assert_eq!(generate(&spec, 1234), generate(&spec, 1234));
}
