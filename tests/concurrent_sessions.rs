//! Concurrency stress suite for the multi-session query server: N sessions served
//! *concurrently* against one shared S2 worker pool must be observationally identical —
//! byte-identical encrypted results, identical per-session metrics and leakage ledgers —
//! to the same N sessions served one after another, and nothing recorded for one
//! session may bleed into another's view.
//!
//! These properties are what make the serving layer analyzable: the paper's leakage
//! profiles are stated per query/client, so "what did S2 observe while serving client
//! i" must stay a deterministic, isolation-respecting question under concurrency.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::{DataOwner, QueryConfig};
use sectopk_datasets::{fig3_relation, QueryWorkload, WorkloadSpec};
use sectopk_server::{QueryServer, ServeConfig, ServeReport, SessionReport};
use sectopk_storage::EncryptedRelation;
use sectopk_tests::TEST_MODULUS_BITS;

fn fixture(seed: u64) -> (DataOwner, EncryptedRelation, QueryWorkload) {
    let mut rng = StdRng::seed_from_u64(seed);
    let owner = DataOwner::new(TEST_MODULUS_BITS, 2, &mut rng).expect("keygen");
    let relation = fig3_relation();
    let (er, _) = owner.encrypt(&relation, &mut rng).expect("encryption");
    let spec = WorkloadSpec { queries: 16, m_range: (1, 3), k_range: (1, 3) };
    let workload = QueryWorkload::generate(&spec, 3, seed ^ 0x77);
    (owner, er, workload)
}

/// Compare two per-session reports on everything deterministic (wall-clock excluded).
fn assert_sessions_identical(a: &SessionReport, b: &SessionReport, context: &str) {
    assert_eq!(a.session, b.session, "{context}: session ids diverge");
    assert_eq!(a.seed, b.seed, "{context}: session seeds diverge");
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{context}: query counts diverge");
    for (i, (x, y)) in a.outcomes.iter().zip(b.outcomes.iter()).enumerate() {
        // ScoredItem equality is group-element equality: byte-identical ciphertexts.
        assert_eq!(x.top_k, y.top_k, "{context}: query {i} ciphertexts diverge");
        assert_eq!(
            x.stats.depths_scanned, y.stats.depths_scanned,
            "{context}: query {i} scan depths diverge"
        );
        assert_eq!(x.stats.halted, y.stats.halted, "{context}: query {i} halting diverges");
    }
    assert_eq!(a.metrics, b.metrics, "{context}: channel metrics diverge");
    assert_eq!(a.s1_ledger.events(), b.s1_ledger.events(), "{context}: S1 ledgers diverge");
    assert_eq!(a.s2_ledger.events(), b.s2_ledger.events(), "{context}: S2 ledgers diverge");
}

fn assert_reports_identical(parallel: &ServeReport, serial: &ServeReport) {
    assert_eq!(parallel.sessions.len(), serial.sessions.len());
    for (p, s) in parallel.sessions.iter().zip(serial.sessions.iter()) {
        assert_sessions_identical(p, s, &format!("{}", p.session));
    }
}

#[test]
fn sixteen_concurrent_sessions_match_serial_execution() {
    let (owner, er, workload) = fixture(0xC0C0);
    let server = QueryServer::new(owner.keys(), er, 4);
    let config = ServeConfig::new(16, 0xBA5E).with_query(QueryConfig::full());

    let parallel = server.serve(&workload, &config).expect("concurrent serve");
    let serial = server.serve_serial(&workload, &config).expect("serial serve");

    assert_eq!(parallel.queries, 16);
    assert_eq!(parallel.sessions.len(), 16);
    assert_reports_identical(&parallel, &serial);

    // The sessions really did distinct work (distinct queries ⇒ distinct S2 views for
    // at least one pair); byte-identity above must not come from idle sessions.
    let total_queries: usize = parallel.sessions.iter().map(|s| s.outcomes.len()).sum();
    assert_eq!(total_queries, 16);
    assert!(parallel.sessions.iter().all(|s| s.metrics.rounds > 0));
}

#[test]
fn dup_elim_variant_is_also_schedule_invariant() {
    let (owner, er, workload) = fixture(0xD0D0);
    let server = QueryServer::new(owner.keys(), er, 3);
    let config = ServeConfig::new(8, 0x1CE).with_query(QueryConfig::dup_elim());

    let parallel = server.serve(&workload, &config).expect("concurrent serve");
    let serial = server.serve_serial(&workload, &config).expect("serial serve");
    assert_reports_identical(&parallel, &serial);
}

#[test]
fn session_views_match_isolated_replay_so_ledgers_cannot_bleed() {
    let (owner, er, workload) = fixture(0xE0E0);
    let config = ServeConfig::new(4, 0xF00D);

    // Serve the whole workload with 4 concurrent sessions sharing one S2 pool...
    let server = QueryServer::new(owner.keys(), er.clone(), 4);
    let report = server.serve(&workload, &config).expect("concurrent serve");

    // ...then replay each session *alone* on a fresh server (same id, same derived
    // seed, same query slice).  If any state — ledger events, pending equality bits,
    // nonce streams — leaked between concurrent sessions, the lone replay would differ.
    let partitions = workload.partition(4);
    for (session, queries) in report.sessions.iter().zip(partitions.iter()) {
        let lone_server = QueryServer::new(owner.keys(), er.clone(), 1);
        let mut client = lone_server
            .open_session(session.session, session.seed, config.batching, config.link)
            .expect("isolated session");
        for query in queries {
            client.run(query, &config.query).expect("isolated query");
        }
        let lone = client.finish();
        assert_sessions_identical(session, &lone, &format!("isolated {}", session.session));
    }

    // Sanity: the per-session S2 views are genuinely per-session (different query
    // slices produce different equality patterns for at least one pair of sessions).
    let distinct = report
        .sessions
        .iter()
        .map(|s| s.s2_ledger.events().len())
        .collect::<std::collections::BTreeSet<_>>();
    assert!(
        distinct.len() > 1 || report.sessions.is_empty(),
        "all sessions recorded identical ledgers — isolation test is vacuous"
    );
}
