//! Concurrency stress suite for the multi-session query server: N sessions served
//! *concurrently* against one shared S2 worker pool must be observationally identical —
//! byte-identical encrypted results, identical per-session metrics and leakage ledgers —
//! to the same N sessions served one after another, and nothing recorded for one
//! session may bleed into another's view.
//!
//! These properties are what make the serving layer analyzable: the paper's leakage
//! profiles are stated per query/client, so "what did S2 observe while serving client
//! i" must stay a deterministic, isolation-respecting question under concurrency.
//!
//! The suite also covers failure isolation: one session submitting garbage (an invalid
//! query, or a raw mis-sequenced protocol request answered by S2's typed error frame)
//! must not take down the worker pool or perturb its neighbours.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::{
    DataOwner, Outsourced, Query, QueryVariant, SecTopKError, Session, VariantChoice,
};
use sectopk_datasets::{fig3_relation, QueryWorkload, WorkloadSpec};
use sectopk_server::{QueryServer, ServeConfig, ServeReport, SessionReport};
use sectopk_tests::TEST_MODULUS_BITS;

fn fixture(seed: u64) -> (DataOwner, Outsourced, QueryWorkload) {
    let mut rng = StdRng::seed_from_u64(seed);
    let owner = DataOwner::new(TEST_MODULUS_BITS, 2, &mut rng).expect("keygen");
    let relation = fig3_relation();
    let (outsourced, _) = owner.outsource(&relation, &mut rng).expect("encryption");
    let spec = WorkloadSpec { queries: 16, m_range: (1, 3), k_range: (1, 3) };
    let workload = QueryWorkload::generate(&spec, 3, seed ^ 0x77);
    (owner, outsourced, workload)
}

/// Compare two per-session reports on everything deterministic (wall-clock excluded).
fn assert_sessions_identical(a: &SessionReport, b: &SessionReport, context: &str) {
    assert_eq!(a.session, b.session, "{context}: session ids diverge");
    assert_eq!(a.seed, b.seed, "{context}: session seeds diverge");
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{context}: query counts diverge");
    assert_eq!(a.failures, b.failures, "{context}: failure lists diverge");
    for (i, (x, y)) in a.outcomes.iter().zip(b.outcomes.iter()).enumerate() {
        // ScoredItem equality is group-element equality: byte-identical ciphertexts.
        assert_eq!(x.top_k, y.top_k, "{context}: query {i} ciphertexts diverge");
        assert_eq!(
            x.stats.depths_scanned, y.stats.depths_scanned,
            "{context}: query {i} scan depths diverge"
        );
        assert_eq!(x.stats.halted, y.stats.halted, "{context}: query {i} halting diverges");
        assert_eq!(x.stats.plan, y.stats.plan, "{context}: query {i} planner decisions diverge");
    }
    assert_eq!(a.metrics, b.metrics, "{context}: channel metrics diverge");
    assert_eq!(a.s1_ledger.events(), b.s1_ledger.events(), "{context}: S1 ledgers diverge");
    assert_eq!(a.s2_ledger.events(), b.s2_ledger.events(), "{context}: S2 ledgers diverge");
}

fn assert_reports_identical(parallel: &ServeReport, serial: &ServeReport) {
    assert_eq!(parallel.sessions.len(), serial.sessions.len());
    for (p, s) in parallel.sessions.iter().zip(serial.sessions.iter()) {
        assert_sessions_identical(p, s, &format!("{}", p.session));
    }
}

#[test]
fn sixteen_concurrent_sessions_match_serial_execution() {
    let (owner, outsourced, workload) = fixture(0xC0C0);
    let server = QueryServer::new(owner.keys(), outsourced, 4);
    let config =
        ServeConfig::new(16, 0xBA5E).with_variant(VariantChoice::Fixed(QueryVariant::Full));

    let parallel = server.serve(&workload, &config).expect("concurrent serve");
    let serial = server.serve_serial(&workload, &config).expect("serial serve");

    assert_eq!(parallel.queries, 16);
    assert_eq!(parallel.sessions.len(), 16);
    assert_eq!(parallel.error_count(), 0);
    assert_reports_identical(&parallel, &serial);

    // The sessions really did distinct work (distinct queries ⇒ distinct S2 views for
    // at least one pair); byte-identity above must not come from idle sessions.
    let total_queries: usize = parallel.sessions.iter().map(|s| s.outcomes.len()).sum();
    assert_eq!(total_queries, 16);
    assert!(parallel.sessions.iter().all(|s| s.metrics.rounds > 0));
}

#[test]
fn auto_planned_serving_is_also_schedule_invariant() {
    // The adaptive planner is deterministic in the query shape, so `variant(Auto)`
    // serving must stay byte-identical between concurrent and serial execution, and
    // every outcome must record its decision.
    let (owner, outsourced, workload) = fixture(0xD0D0);
    let server = QueryServer::new(owner.keys(), outsourced, 3);
    let config = ServeConfig::new(8, 0x1CE).with_variant(VariantChoice::Auto);

    let parallel = server.serve(&workload, &config).expect("concurrent serve");
    let serial = server.serve_serial(&workload, &config).expect("serial serve");
    assert_reports_identical(&parallel, &serial);

    for session in &parallel.sessions {
        for plan in session.plans() {
            assert!(plan.auto, "Auto serving must record planner-made decisions");
            // fig3 is five rows: the planner must keep full privacy.
            assert_eq!(plan.variant, QueryVariant::Full);
        }
    }
}

#[test]
fn session_views_match_isolated_replay_so_ledgers_cannot_bleed() {
    let (owner, outsourced, workload) = fixture(0xE0E0);
    let config = ServeConfig::new(4, 0xF00D);

    // Serve the whole workload with 4 concurrent sessions sharing one S2 pool...
    let server = QueryServer::new(owner.keys(), outsourced.clone(), 4);
    let report = server.serve(&workload, &config).expect("concurrent serve");

    // ...then replay each session *alone* on a fresh server (same id, same derived
    // seed, same query slice).  If any state — ledger events, pending equality bits,
    // nonce streams — leaked between concurrent sessions, the lone replay would differ.
    let partitions = workload.partition(4);
    for (session, queries) in report.sessions.iter().zip(partitions.iter()) {
        let lone_server = QueryServer::new(owner.keys(), outsourced.clone(), 1);
        let mut client = lone_server
            .open_session(session.session, session.seed, config.batching, config.link)
            .expect("isolated session");
        for query in queries {
            let built = Query::from_spec(query.clone()).with_variant(config.variant);
            client.execute(&built).expect("isolated query");
        }
        let lone = client.finish();
        assert_sessions_identical(session, &lone, &format!("isolated {}", session.session));
    }

    // Sanity: the per-session S2 views are genuinely per-session (different query
    // slices produce different equality patterns for at least one pair of sessions).
    let distinct = report
        .sessions
        .iter()
        .map(|s| s.s2_ledger.events().len())
        .collect::<std::collections::BTreeSet<_>>();
    assert!(
        distinct.len() > 1 || report.sessions.is_empty(),
        "all sessions recorded identical ledgers — isolation test is vacuous"
    );
}

#[test]
fn a_failing_session_does_not_disturb_its_neighbours() {
    // Session 1 sends an invalid query mid-stream *and* a raw mis-sequenced protocol
    // request (which S2 answers with a typed error frame); session 2 runs a clean
    // stream concurrently.  The server must keep serving, record the failures in
    // session 1's report, and leave session 2 byte-identical to a run without the
    // misbehaving neighbour.
    let (owner, outsourced, workload) = fixture(0xF1F1);
    let queries = workload.partition(2);
    let config = ServeConfig::new(2, 0xABAD);

    let run_clean_neighbour = |with_bad_session: bool| {
        let server = QueryServer::new(owner.keys(), outsourced.clone(), 2);
        let mut bad = server.open_configured(1, &config).expect("open session 1");
        let mut good = server.open_configured(2, &config).expect("open session 2");

        if with_bad_session {
            // An invalid query: attribute index out of range for the 3-column relation.
            let invalid = Query::top_k(1).attribute_indices([9]).build().expect("builds");
            let err = bad.execute(&invalid).expect_err("must fail");
            assert!(matches!(err, SecTopKError::Query(_)), "typed query error, got {err:?}");

            // A mis-sequenced raw protocol request: S2 replies with a typed error frame
            // instead of panicking its worker.
            use sectopk_protocols::{ProtocolError, S1Request, WireErrorCode};
            let err = bad
                .send_raw_request(S1Request::EqAggregate {
                    rows: 2,
                    cols: 2,
                    want: Default::default(),
                })
                .expect_err("must fail");
            assert!(
                matches!(&err, ProtocolError::Remote(e) if e.code == WireErrorCode::BadSequence),
                "typed wire error, got {err:?}"
            );

            // The session itself is still usable after both failures.
            let valid = Query::from_spec(queries[0][0].clone()).with_variant(config.variant);
            bad.execute(&valid).expect("session survives its own failures");
        }

        for query in &queries[1] {
            let built = Query::from_spec(query.clone()).with_variant(config.variant);
            good.execute(&built).expect("clean session query");
        }
        (bad.finish(), good.finish())
    };

    let (bad_report, good_with_noise) = run_clean_neighbour(true);
    let (_, good_alone) = run_clean_neighbour(false);

    assert_eq!(bad_report.failures.len(), 1, "the invalid query is recorded");
    assert_eq!(bad_report.failures[0].index, 0);
    assert!(bad_report.failures[0].error.is_invalid_query());
    assert_eq!(bad_report.outcomes.len(), 1, "the recovery query succeeded");

    assert_sessions_identical(&good_with_noise, &good_alone, "clean neighbour");
}
