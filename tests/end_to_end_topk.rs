//! End-to-end correctness of the full SecTopK pipeline (Enc → Token → SecQuery →
//! resolution) on the worked examples and on randomly generated relations, checked
//! against the exact plaintext top-k and the plaintext NRA baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sectopk_core::{nra_top_k, QueryConfig};
use sectopk_datasets::{fig3_relation, patient_name, patients_relation};
use sectopk_storage::{ObjectId, Relation, Row, TopKQuery};
use sectopk_tests::{assert_valid_top_k, harness, run_query};

#[test]
fn fig3_full_privacy_returns_x3_and_x2() {
    let relation = fig3_relation();
    let mut h = harness(relation.clone(), 1);
    let query = TopKQuery::sum(vec![0, 1, 2], 2);
    let (ids, outcome) = run_query(&mut h, &query, &QueryConfig::full());
    assert_valid_top_k(&relation, &[0, 1, 2], &[], 2, &ids, "fig3 Qry_F");
    // Fig. 3c: the walk-through halts after depth 3 with X3 and X2.
    assert_eq!(ids, vec![ObjectId(3), ObjectId(2)]);
    assert!(outcome.stats.halted);
    assert!(outcome.stats.depths_scanned <= relation.len());
}

#[test]
fn patients_example_returns_david_and_emma() {
    // Example 1.1: top-2 by chol + thalach over the encrypted patients table.
    let relation = patients_relation();
    let chol = relation.attribute_index("chol").unwrap();
    let thalach = relation.attribute_index("thalach").unwrap();
    let mut h = harness(relation.clone(), 2);
    let query = TopKQuery::sum(vec![chol, thalach], 2);
    let (ids, _) = run_query(&mut h, &query, &QueryConfig::dup_elim());
    let names: Vec<&str> = ids.iter().map(|&id| patient_name(id)).collect();
    assert_eq!(names, vec!["David", "Emma"]);
}

#[test]
fn random_relations_full_variant_matches_plaintext_top_k() {
    let mut rng = StdRng::seed_from_u64(99);
    for trial in 0..4 {
        let n = rng.gen_range(6..12);
        let m = rng.gen_range(2..4usize);
        let rows: Vec<Row> = (0..n)
            .map(|i| Row {
                id: ObjectId(i as u64 + 1),
                values: (0..m).map(|_| rng.gen_range(0..30)).collect(),
            })
            .collect();
        let relation = Relation::from_rows(rows);
        let attrs: Vec<usize> = (0..m).collect();
        let k = rng.gen_range(1..=3);

        let mut h = harness(relation.clone(), 1000 + trial);
        let query = TopKQuery::sum(attrs.clone(), k);
        let (ids, outcome) = run_query(&mut h, &query, &QueryConfig::full());
        assert_valid_top_k(&relation, &attrs, &[], k, &ids, &format!("random trial {trial}"));

        // The secure protocol may halt later than plaintext NRA (its upper bounds can be
        // stale between refreshes) but never scans past the relation size.
        let nra = nra_top_k(&relation, &attrs, &[], k);
        assert!(outcome.stats.depths_scanned >= nra.halting_depth.min(relation.len()));
        assert!(outcome.stats.depths_scanned <= relation.len());
    }
}

#[test]
fn weighted_query_is_honoured() {
    // Weighting attribute 2 by 10 changes the winner (see the NRA unit test).
    let relation = fig3_relation();
    let mut h = harness(relation.clone(), 7);
    let query = TopKQuery::weighted(vec![0, 2], vec![1, 10], 1);
    let (ids, _) = run_query(&mut h, &query, &QueryConfig::dup_elim());
    assert_valid_top_k(&relation, &[0, 2], &[1, 10], 1, &ids, "weighted");
    assert_eq!(ids, vec![ObjectId(4)]);
}

#[test]
fn k_equal_to_relation_size_returns_everything() {
    let relation = fig3_relation();
    let mut h = harness(relation.clone(), 8);
    let query = TopKQuery::sum(vec![0, 1], 5);
    let (ids, _) = run_query(&mut h, &query, &QueryConfig::dup_elim());
    assert_valid_top_k(&relation, &[0, 1], &[], 5, &ids, "k = n");
    assert_eq!(ids.len(), 5);
}

#[test]
fn single_attribute_query_halts_quickly() {
    let relation = fig3_relation();
    let mut h = harness(relation.clone(), 9);
    let query = TopKQuery::sum(vec![0], 2);
    let (ids, outcome) = run_query(&mut h, &query, &QueryConfig::dup_elim());
    assert_valid_top_k(&relation, &[0], &[], 2, &ids, "single attribute");
    assert!(outcome.stats.halted);
    assert!(outcome.stats.depths_scanned <= 3, "one list: top-2 is known after few depths");
}

#[test]
fn depth_cap_returns_partial_answer_without_halting() {
    let relation = fig3_relation();
    let mut h = harness(relation.clone(), 10);
    let query = TopKQuery::sum(vec![0, 1, 2], 2);
    let config = QueryConfig::dup_elim().with_max_depth(1);
    let (_ids, outcome) = run_query(&mut h, &query, &config);
    assert_eq!(outcome.stats.depths_scanned, 1);
    assert!(!outcome.stats.halted);
    assert_eq!(outcome.top_k.len(), 2);
}

#[test]
fn communication_statistics_are_populated() {
    let relation = fig3_relation();
    let mut h = harness(relation.clone(), 11);
    let query = TopKQuery::sum(vec![0, 1], 2);
    let (_, outcome) = run_query(&mut h, &query, &QueryConfig::full());
    let stats = &outcome.stats;
    assert!(stats.channel.bytes > 0);
    assert!(stats.channel.rounds > 0);
    assert_eq!(stats.per_depth_channel.len(), stats.depths_scanned);
    assert_eq!(stats.per_depth_seconds.len(), stats.depths_scanned);
    assert!(stats.seconds_per_depth() > 0.0);
    assert!(stats.bytes_per_depth() > 0.0);
    // Latency model: positive and decreasing in link speed.
    let slow = stats.channel.latency_seconds(50.0, 0.0);
    let fast = stats.channel.latency_seconds(500.0, 0.0);
    assert!(slow > fast);
}
