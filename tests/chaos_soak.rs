//! Chaos soak: the serving layer under sustained connection faults.
//!
//! [`QueryServer::serve_tcp`] runs a whole workload over real loopback sockets with a
//! deterministic [`FaultPlan`] severing connections before sends, after sends and
//! around replies, while [`RetryPolicy`] turns every injected failure into a
//! reconnect-resume-resend.  The invariant under soak is total: the faulted run's
//! per-session reports — resolved results, encrypted ciphertexts, planner decisions,
//! channel metrics, **both leakage ledgers** — must be byte-identical to the fault-free
//! in-process [`QueryServer::serve`] of the same configuration, with zero recorded
//! failures.  Ledger identity against the fault-free run is what pins the leakage
//! goldens: `tests/leakage_golden.rs` freezes the fault-free profiles, so equality here
//! proves faults cause zero golden drift and zero duplicate side effects.
//!
//! `SECTOPK_SOAK_QUERIES` scales the workload (default 24; CI's chaos job runs
//! hundreds).

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::{DataOwner, FaultPlan, Outsourced, QueryVariant, RetryPolicy, VariantChoice};
use sectopk_datasets::{fig3_relation, QueryWorkload, WorkloadSpec};
use sectopk_server::{QueryServer, ServeConfig, SessionReport};
use sectopk_tests::TEST_MODULUS_BITS;

fn soak_queries() -> usize {
    std::env::var("SECTOPK_SOAK_QUERIES").ok().and_then(|v| v.parse().ok()).unwrap_or(24)
}

fn fixture(seed: u64, queries: usize) -> (DataOwner, Outsourced, QueryWorkload) {
    let mut rng = StdRng::seed_from_u64(seed);
    let owner = DataOwner::new(TEST_MODULUS_BITS, 2, &mut rng).expect("keygen");
    let (outsourced, _) = owner.outsource(&fig3_relation(), &mut rng).expect("encryption");
    let spec = WorkloadSpec { queries, m_range: (1, 3), k_range: (1, 3) };
    let workload = QueryWorkload::generate(&spec, 3, seed ^ 0x77);
    (owner, outsourced, workload)
}

/// A patient loopback retry budget: enough attempts to ride out every injected drop.
fn soak_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 12,
        backoff: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
        deadline: Duration::from_secs(120),
    }
}

fn assert_sessions_identical(a: &SessionReport, b: &SessionReport, context: &str) {
    assert_eq!(a.session, b.session, "{context}: session ids diverge");
    assert_eq!(a.seed, b.seed, "{context}: session seeds diverge");
    assert_eq!(a.failures, b.failures, "{context}: failure lists diverge");
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{context}: query counts diverge");
    for (i, (x, y)) in a.outcomes.iter().zip(b.outcomes.iter()).enumerate() {
        assert_eq!(x.top_k, y.top_k, "{context}: query {i} ciphertexts diverge");
        assert_eq!(
            x.stats.depths_scanned, y.stats.depths_scanned,
            "{context}: query {i} scan depths diverge"
        );
        assert_eq!(x.stats.plan, y.stats.plan, "{context}: query {i} planner decisions diverge");
    }
    assert_eq!(a.metrics, b.metrics, "{context}: channel metrics diverge");
    assert_eq!(a.s1_ledger.events(), b.s1_ledger.events(), "{context}: S1 ledgers diverge");
    assert_eq!(a.s2_ledger.events(), b.s2_ledger.events(), "{context}: S2 ledgers diverge");
}

/// The soak proper: for each variant shape, serve the workload fault-free in-process,
/// then over TCP under the given fault plan, and require bit-for-bit identical reports.
fn soak(faults: FaultPlan, seed: u64) {
    let (owner, outsourced, workload) = fixture(seed, soak_queries());
    let server = QueryServer::new(owner.keys(), outsourced, 4);

    for (name, variant) in [
        ("Qry_F", VariantChoice::Fixed(QueryVariant::Full)),
        ("Qry_E", VariantChoice::Fixed(QueryVariant::DupElim)),
        ("auto", VariantChoice::Auto),
    ] {
        let config = ServeConfig::new(4, seed ^ 0xBA5E).with_variant(variant);
        let baseline = server.serve(&workload, &config).expect("fault-free in-process serve");
        let faulted = server
            .serve_tcp(&workload, &config.with_retry(soak_retry()).with_faults(faults))
            .expect("faulted TCP serve");

        assert_eq!(baseline.error_count(), 0, "{name}: fault-free run must be clean");
        assert_eq!(
            faulted.error_count(),
            0,
            "{name}: every injected fault must be recovered transparently"
        );
        assert_eq!(faulted.sessions.len(), baseline.sessions.len());
        for (f, b) in faulted.sessions.iter().zip(baseline.sessions.iter()) {
            assert_sessions_identical(f, b, &format!("{name} session {}", f.session));
            // The soak must not pass vacuously: every session did real protocol work,
            // so a fault period smaller than its round count guarantees injections.
            assert!(
                f.metrics.rounds > 16,
                "{name} session {}: too few rounds ({}) to have exercised the fault plan",
                f.session,
                f.metrics.rounds
            );
        }
    }
}

#[test]
fn soak_under_lost_replies_is_byte_identical_to_fault_free_serving() {
    // Drops *after* send: replies are lost in flight, so recovery leans on the
    // server-side replay cache (exactly-once via replay, never re-execution).
    soak(FaultPlan::none().with_drop_after_send_every(17), 0x50AC_0001);
}

#[test]
fn soak_under_lost_requests_is_byte_identical_to_fault_free_serving() {
    // Drops *before* send: requests are lost, so recovery re-executes exactly once.
    soak(FaultPlan::none().with_drop_before_send_every(13), 0x50AC_0002);
}

#[test]
fn soak_under_mixed_faults_and_delays_is_byte_identical_to_fault_free_serving() {
    // Both drop modes plus injected latency on a third, coprime schedule, so sessions
    // hit every combination at different points of their query streams.
    let faults = FaultPlan::none()
        .with_drop_after_send_every(19)
        .with_drop_before_send_every(23)
        .with_delay_every(7, Duration::from_millis(1));
    soak(faults, 0x50AC_0003);
}

#[test]
fn overload_burst_sheds_sessions_with_typed_transient_errors() {
    // A two-seat server under a three-client burst: the admitted pair serves cleanly,
    // the shed client gets a *typed, transient* error it could back off and retry —
    // never a hang, never a stringly failure.
    use sectopk_core::{Query, Session, TcpOptions};
    use sectopk_protocols::{MultiplexServer, TcpCloudServer, TcpServerConfig};

    let (owner, outsourced, _) = fixture(0x50AC_0004, 1);
    let listener = TcpCloudServer::serve_pool(
        "127.0.0.1:0",
        std::sync::Arc::new(MultiplexServer::new(2)),
        TcpServerConfig::default().with_max_sessions(2),
    )
    .expect("capped listener binds");
    let addr = listener.local_addr().to_string();

    let mut admitted: Vec<_> = (1..=2u64)
        .map(|i| {
            owner
                .connect_remote_with(&outsourced, &addr, 0x5EA7 + i, true, TcpOptions::default())
                .expect("seat admitted")
        })
        .collect();

    let err = owner
        .connect_remote_with(&outsourced, &addr, 0x5EA7, true, TcpOptions::default())
        .map(|_| ())
        .expect_err("third session must be shed by admission control");
    assert!(err.is_transient(), "admission shedding must be retryable, got {err:?}");

    // The admitted sessions are unharmed by the burst.
    let query = Query::top_k(1).attribute_indices([0, 1]).build().expect("query builds");
    for session in &mut admitted {
        session.execute(&query).expect("admitted session still serves");
    }
}
