//! The two transport implementations must be observationally identical: for a fixed
//! seed, running the same workload over `InProcessTransport` and `ChannelTransport`
//! (S2 on its own thread, every message serialized through the binary wire codec) must
//! produce **byte-identical** query results, identical leakage ledgers on both sides,
//! and identical channel metrics.  Any divergence means the wire format is lossy or S2
//! state leaked around the message boundary.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::{sec_query, DataOwner, QueryConfig, QueryOutcome};
use sectopk_protocols::{ScoredItem, TransportKind, TwoClouds};
use sectopk_storage::{ObjectId, Relation, Row, TopKQuery};
use sectopk_tests::{TEST_EHL_KEYS, TEST_MODULUS_BITS};

fn fixed_relation() -> Relation {
    Relation::new(
        vec!["r1".into(), "r2".into(), "r3".into()],
        vec![
            Row { id: ObjectId(1), values: vec![10, 3, 2] },
            Row { id: ObjectId(2), values: vec![8, 8, 0] },
            Row { id: ObjectId(3), values: vec![5, 7, 6] },
            Row { id: ObjectId(4), values: vec![3, 2, 8] },
            Row { id: ObjectId(5), values: vec![1, 1, 1] },
        ],
    )
}

/// Run one fixed-seed query on the given transport and return everything observable.
fn run_on(kind: TransportKind, config: &QueryConfig) -> (TwoClouds, QueryOutcome) {
    let mut rng = StdRng::seed_from_u64(0xE9_51);
    let owner = DataOwner::new(TEST_MODULUS_BITS, TEST_EHL_KEYS, &mut rng).expect("keygen");
    let relation = fixed_relation();
    let (er, _) = owner.encrypt(&relation, &mut rng).expect("encryption");
    let token = owner.authorize_client().token(3, &TopKQuery::sum(vec![0, 1, 2], 2)).unwrap();
    let mut clouds =
        TwoClouds::with_transport(owner.keys(), 0xBEEF, kind, true).expect("cloud setup");
    let outcome = sec_query(&mut clouds, &er, &token, config).expect("query");
    (clouds, outcome)
}

fn assert_items_byte_identical(a: &[ScoredItem], b: &[ScoredItem]) {
    assert_eq!(a.len(), b.len(), "result lengths differ");
    for (x, y) in a.iter().zip(b.iter()) {
        // ScoredItem equality is group-element equality: byte-identical ciphertexts.
        assert_eq!(x, y, "transports produced different ciphertexts");
    }
}

fn assert_equivalent(config: &QueryConfig) {
    let (clouds_ip, outcome_ip) = run_on(TransportKind::InProcess, config);
    let (clouds_ch, outcome_ch) = run_on(TransportKind::Channel, config);

    assert_items_byte_identical(&outcome_ip.top_k, &outcome_ch.top_k);
    assert_eq!(
        clouds_ip.s1_ledger().events(),
        clouds_ch.s1_ledger().events(),
        "S1 ledgers diverge"
    );
    assert_eq!(
        clouds_ip.s2_ledger().events(),
        clouds_ch.s2_ledger().events(),
        "S2 ledgers diverge"
    );
    // Bytes are measured from the same wire encoding on both transports.
    assert_eq!(clouds_ip.channel(), clouds_ch.channel(), "channel metrics diverge");
    assert_eq!(outcome_ip.stats.depths_scanned, outcome_ch.stats.depths_scanned);
    assert_eq!(outcome_ip.stats.halted, outcome_ch.stats.halted);
}

#[test]
fn full_privacy_query_is_transport_invariant() {
    assert_equivalent(&QueryConfig::full());
}

#[test]
fn dup_elim_query_is_transport_invariant() {
    assert_equivalent(&QueryConfig::dup_elim());
}

#[test]
fn channel_transport_traffic_is_nonzero_and_round_counted() {
    let (clouds, outcome) = run_on(TransportKind::Channel, &QueryConfig::full());
    assert_eq!(clouds.transport_kind(), TransportKind::Channel);
    let metrics = clouds.channel();
    assert!(metrics.bytes > 0);
    assert!(metrics.rounds > 0);
    // Strict request/response framing: every S1 message is answered exactly once.
    assert_eq!(metrics.messages_s1_to_s2, metrics.messages_s2_to_s1);
    assert_eq!(metrics.rounds, metrics.messages_s1_to_s2);
    assert_eq!(metrics.outstanding_requests, 0);
    assert!(outcome.stats.depths_scanned > 0);
}

#[test]
fn join_pipeline_is_transport_invariant() {
    use sectopk_core::{encrypt_for_join, join_token, top_k_join, JoinQuery};

    let run = |kind: TransportKind| {
        let mut rng = StdRng::seed_from_u64(0x0001_0152);
        let owner = DataOwner::new(TEST_MODULUS_BITS, TEST_EHL_KEYS, &mut rng).expect("keygen");
        let keys = owner.keys();
        let left = Relation::new(
            vec!["A".into(), "C".into()],
            vec![
                Row { id: ObjectId(1), values: vec![1, 10] },
                Row { id: ObjectId(2), values: vec![2, 20] },
            ],
        );
        let right = Relation::new(
            vec!["B".into(), "D".into()],
            vec![
                Row { id: ObjectId(1), values: vec![2, 5] },
                Row { id: ObjectId(2), values: vec![9, 7] },
            ],
        );
        let enc_left = encrypt_for_join(&left, keys, "join/left", &mut rng).unwrap();
        let enc_right = encrypt_for_join(&right, keys, "join/right", &mut rng).unwrap();
        let query = JoinQuery { join_left: 0, join_right: 0, score_left: 1, score_right: 1, k: 2 };
        let token = join_token(keys, 2, 2, &query, &[1], &[1]).unwrap();
        let mut clouds = TwoClouds::with_transport(keys, 0xCAFE, kind, true).unwrap();
        let outcome = top_k_join(&mut clouds, &enc_left, &enc_right, &token).unwrap();
        (clouds.channel(), clouds.s2_ledger(), outcome)
    };

    let (metrics_ip, ledger_ip, outcome_ip) = run(TransportKind::InProcess);
    let (metrics_ch, ledger_ch, outcome_ch) = run(TransportKind::Channel);
    assert_eq!(metrics_ip, metrics_ch);
    assert_eq!(ledger_ip.events(), ledger_ch.events());
    assert_eq!(outcome_ip.matching_pairs, outcome_ch.matching_pairs);
    assert_eq!(outcome_ip.top_k, outcome_ch.top_k, "joined tuples must be byte-identical");
}
