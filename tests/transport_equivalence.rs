//! The transport implementations must be observationally identical: for a fixed seed,
//! running the same workload over `InProcessTransport`, `ChannelTransport` (S2 on its
//! own thread, every message serialized through the binary wire codec),
//! `MultiplexTransport` (S2 as a session-multiplexing worker pool, messages in
//! session-tagged envelopes) and `TcpTransport` (S2 behind a real loopback socket on
//! an ephemeral port, envelopes length-prefix-framed) must produce **byte-identical**
//! query results, identical leakage ledgers on both sides, and identical channel
//! metrics.  Any divergence means the wire format is lossy, S2 state leaked around the
//! message boundary, or the framing perturbed the protocol.
//!
//! Beyond the fixed worked examples, a property-test conformance harness drives random
//! relations and random `TopKQuery`s through all four transports.

use proptest::proptest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sectopk_core::{
    DataOwner, DirectSession, Query, QueryConfig, QueryOutcome, Session, VariantChoice,
};
use sectopk_protocols::{ChannelMetrics, LeakageLedger, ScoredItem, TransportKind, TwoClouds};
use sectopk_storage::{ObjectId, Relation, Row, TopKQuery};
use sectopk_tests::{TEST_EHL_KEYS, TEST_MODULUS_BITS};

/// Every transport implementation under test.
const ALL_TRANSPORTS: [TransportKind; 4] = [
    TransportKind::InProcess,
    TransportKind::Channel,
    TransportKind::Multiplex,
    TransportKind::Tcp,
];

fn fixed_relation() -> Relation {
    Relation::new(
        vec!["r1".into(), "r2".into(), "r3".into()],
        vec![
            Row { id: ObjectId(1), values: vec![10, 3, 2] },
            Row { id: ObjectId(2), values: vec![8, 8, 0] },
            Row { id: ObjectId(3), values: vec![5, 7, 6] },
            Row { id: ObjectId(4), values: vec![3, 2, 8] },
            Row { id: ObjectId(5), values: vec![1, 1, 1] },
        ],
    )
}

/// Run one fixed-seed query on the given transport, through the `Session` front door,
/// and return everything observable.
fn run_on(kind: TransportKind, config: &QueryConfig) -> (DirectSession, QueryOutcome) {
    let mut rng = StdRng::seed_from_u64(0xE9_51);
    let owner = DataOwner::new(TEST_MODULUS_BITS, TEST_EHL_KEYS, &mut rng).expect("keygen");
    let relation = fixed_relation();
    let (outsourced, _) = owner.outsource(&relation, &mut rng).expect("encryption");
    let query = Query::from_spec(TopKQuery::sum(vec![0, 1, 2], 2))
        .with_variant(VariantChoice::Fixed(config.variant));
    let mut session = owner.connect_with(&outsourced, 0xBEEF, kind, true).expect("cloud setup");
    let outcome = session.execute(&query).expect("query").outcome;
    (session, outcome)
}

fn assert_items_byte_identical(a: &[ScoredItem], b: &[ScoredItem], kind: TransportKind) {
    assert_eq!(a.len(), b.len(), "{kind:?}: result lengths differ");
    for (x, y) in a.iter().zip(b.iter()) {
        // ScoredItem equality is group-element equality: byte-identical ciphertexts.
        assert_eq!(x, y, "{kind:?}: transports produced different ciphertexts");
    }
}

/// Everything observable from one execution, in comparable form.
struct Observation {
    top_k: Vec<ScoredItem>,
    s1_ledger: LeakageLedger,
    s2_ledger: LeakageLedger,
    metrics: ChannelMetrics,
    depths_scanned: usize,
    halted: bool,
}

fn observe(session: &DirectSession, outcome: &QueryOutcome) -> Observation {
    Observation {
        top_k: outcome.top_k.clone(),
        s1_ledger: session.s1_ledger(),
        s2_ledger: session.s2_ledger(),
        metrics: session.metrics(),
        depths_scanned: outcome.stats.depths_scanned,
        halted: outcome.stats.halted,
    }
}

fn assert_observations_equal(reference: &Observation, other: &Observation, kind: TransportKind) {
    assert_items_byte_identical(&reference.top_k, &other.top_k, kind);
    assert_eq!(
        reference.s1_ledger.events(),
        other.s1_ledger.events(),
        "{kind:?}: S1 ledgers diverge"
    );
    assert_eq!(
        reference.s2_ledger.events(),
        other.s2_ledger.events(),
        "{kind:?}: S2 ledgers diverge"
    );
    // Bytes are measured from the same wire encoding on every transport.
    assert_eq!(reference.metrics, other.metrics, "{kind:?}: channel metrics diverge");
    assert_eq!(reference.depths_scanned, other.depths_scanned);
    assert_eq!(reference.halted, other.halted);
}

fn assert_equivalent(config: &QueryConfig) {
    let (session_ip, outcome_ip) = run_on(TransportKind::InProcess, config);
    let reference = observe(&session_ip, &outcome_ip);
    for kind in [TransportKind::Channel, TransportKind::Multiplex, TransportKind::Tcp] {
        let (session, outcome) = run_on(kind, config);
        assert_observations_equal(&reference, &observe(&session, &outcome), kind);
    }
}

#[test]
fn full_privacy_query_is_transport_invariant() {
    assert_equivalent(&QueryConfig::full());
}

#[test]
fn dup_elim_query_is_transport_invariant() {
    assert_equivalent(&QueryConfig::dup_elim());
}

#[test]
fn channel_transport_traffic_is_nonzero_and_round_counted() {
    let (session, outcome) = run_on(TransportKind::Channel, &QueryConfig::full());
    assert_eq!(session.clouds().transport_kind(), TransportKind::Channel);
    let metrics = session.metrics();
    assert!(metrics.bytes > 0);
    assert!(metrics.rounds > 0);
    // Strict request/response framing: every S1 message is answered exactly once.
    assert_eq!(metrics.messages_s1_to_s2, metrics.messages_s2_to_s1);
    assert_eq!(metrics.rounds, metrics.messages_s1_to_s2);
    assert_eq!(metrics.outstanding_requests, 0);
    assert!(outcome.stats.depths_scanned > 0);
}

#[test]
fn multiplex_transport_traffic_is_nonzero_and_round_counted() {
    let (session, outcome) = run_on(TransportKind::Multiplex, &QueryConfig::full());
    assert_eq!(session.clouds().transport_kind(), TransportKind::Multiplex);
    let metrics = session.metrics();
    assert!(metrics.bytes > 0);
    assert!(metrics.rounds > 0);
    assert_eq!(metrics.messages_s1_to_s2, metrics.messages_s2_to_s1);
    assert_eq!(metrics.rounds, metrics.messages_s1_to_s2);
    assert_eq!(metrics.outstanding_requests, 0);
    assert!(outcome.stats.depths_scanned > 0);
}

#[test]
fn tcp_transport_traffic_is_nonzero_and_round_counted() {
    let (session, outcome) = run_on(TransportKind::Tcp, &QueryConfig::full());
    assert_eq!(session.clouds().transport_kind(), TransportKind::Tcp);
    let metrics = session.metrics();
    assert!(metrics.bytes > 0);
    assert!(metrics.rounds > 0);
    assert_eq!(metrics.messages_s1_to_s2, metrics.messages_s2_to_s1);
    assert_eq!(metrics.rounds, metrics.messages_s1_to_s2);
    assert_eq!(metrics.outstanding_requests, 0);
    assert!(outcome.stats.depths_scanned > 0);
}

#[test]
fn join_pipeline_is_transport_invariant() {
    use sectopk_core::{encrypt_for_join, join_token, top_k_join, JoinQuery};

    let run = |kind: TransportKind| {
        let mut rng = StdRng::seed_from_u64(0x0001_0152);
        let owner = DataOwner::new(TEST_MODULUS_BITS, TEST_EHL_KEYS, &mut rng).expect("keygen");
        let keys = owner.keys();
        let left = Relation::new(
            vec!["A".into(), "C".into()],
            vec![
                Row { id: ObjectId(1), values: vec![1, 10] },
                Row { id: ObjectId(2), values: vec![2, 20] },
            ],
        );
        let right = Relation::new(
            vec!["B".into(), "D".into()],
            vec![
                Row { id: ObjectId(1), values: vec![2, 5] },
                Row { id: ObjectId(2), values: vec![9, 7] },
            ],
        );
        let enc_left = encrypt_for_join(&left, keys, "join/left", &mut rng).unwrap();
        let enc_right = encrypt_for_join(&right, keys, "join/right", &mut rng).unwrap();
        let query = JoinQuery { join_left: 0, join_right: 0, score_left: 1, score_right: 1, k: 2 };
        let token = join_token(keys, 2, 2, &query, &[1], &[1]).unwrap();
        let mut clouds = TwoClouds::with_transport(keys, 0xCAFE, kind, true).unwrap();
        let outcome = top_k_join(&mut clouds, &enc_left, &enc_right, &token).unwrap();
        (clouds.channel(), clouds.s2_ledger(), outcome)
    };

    let (metrics_ip, ledger_ip, outcome_ip) = run(TransportKind::InProcess);
    for kind in [TransportKind::Channel, TransportKind::Multiplex, TransportKind::Tcp] {
        let (metrics, ledger, outcome) = run(kind);
        assert_eq!(metrics_ip, metrics, "{kind:?}: join metrics diverge");
        assert_eq!(ledger_ip.events(), ledger.events(), "{kind:?}: join ledgers diverge");
        assert_eq!(outcome_ip.matching_pairs, outcome.matching_pairs);
        assert_eq!(
            outcome_ip.top_k, outcome.top_k,
            "{kind:?}: joined tuples must be byte-identical"
        );
    }
}

// ====================================================================================
// Property-test conformance harness: random relations × random queries × every
// transport.  Each case builds a fresh random relation and query workload from the
// proptest-chosen seed, runs it once per transport, and requires every observable to
// coincide with the in-process reference.
// ====================================================================================

fn random_relation(rng: &mut StdRng) -> Relation {
    let num_attributes = rng.gen_range(2usize..=4);
    let rows = rng.gen_range(3usize..=6);
    let names = (0..num_attributes).map(|i| format!("a{i}")).collect();
    let rows = (1..=rows)
        .map(|id| Row {
            id: ObjectId(id as u64),
            values: (0..num_attributes).map(|_| rng.gen_range(0..16)).collect(),
        })
        .collect();
    Relation::new(names, rows)
}

fn random_query(rng: &mut StdRng, num_attributes: usize) -> TopKQuery {
    let m = rng.gen_range(1..=num_attributes);
    let mut attrs: Vec<usize> = (0..num_attributes).collect();
    for i in (1..attrs.len()).rev() {
        attrs.swap(i, rng.gen_range(0..=i));
    }
    attrs.truncate(m);
    attrs.sort_unstable();
    TopKQuery::sum(attrs, rng.gen_range(1..=3))
}

proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(4))]
    #[test]
    fn random_workloads_are_transport_invariant(case_seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(case_seed ^ 0xC0F0);
        let relation = random_relation(&mut rng);
        let query = random_query(&mut rng, relation.num_attributes());
        let config =
            if rng.gen() { QueryConfig::full() } else { QueryConfig::dup_elim() };
        let keygen_seed = rng.gen::<u64>();
        let cloud_seed = rng.gen::<u64>();

        let run = |kind: TransportKind| {
            let mut rng = StdRng::seed_from_u64(keygen_seed);
            let owner =
                DataOwner::new(TEST_MODULUS_BITS, TEST_EHL_KEYS, &mut rng).expect("keygen");
            let (outsourced, _) = owner.outsource(&relation, &mut rng).expect("encryption");
            let built = Query::from_spec(query.clone())
                .with_variant(VariantChoice::Fixed(config.variant));
            let mut session = owner
                .connect_with(&outsourced, cloud_seed, kind, true)
                .expect("cloud setup");
            let outcome = session.execute(&built).expect("query").outcome;
            observe(&session, &outcome)
        };

        let reference = run(TransportKind::InProcess);
        assert!(reference.metrics.bytes > 0);
        for kind in ALL_TRANSPORTS {
            if kind != TransportKind::InProcess {
                assert_observations_equal(&reference, &run(kind), kind);
            }
        }
    }
}
