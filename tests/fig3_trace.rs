//! A fine-grained trace of the Fig. 3 worked example: the per-depth worst/best scores of
//! the paper's walk-through (Figs. 3a–3c) reproduced with the actual sub-protocols.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::DataOwner;
use sectopk_crypto::paillier::PaillierPublicKey;
use sectopk_datasets::fig3_relation;
use sectopk_ehl::EhlEncoder;
use sectopk_protocols::TwoClouds;
use sectopk_storage::{EncryptedItem, ObjectId};
use sectopk_tests::{TEST_EHL_KEYS, TEST_MODULUS_BITS};

/// Build the three Fig. 3 sorted lists (R1, R2, R3) as encrypted items, down to `depth`.
fn fig3_encrypted_prefixes(
    depth: usize,
    encoder: &EhlEncoder,
    pk: &PaillierPublicKey,
    rng: &mut StdRng,
) -> Vec<Vec<EncryptedItem>> {
    let relation = fig3_relation();
    let sorted = relation.sorted_lists();
    (0..3)
        .map(|list| {
            (0..depth)
                .map(|d| {
                    let item = sorted.item(list, d).unwrap();
                    EncryptedItem {
                        ehl: encoder.encode(&item.object.to_bytes(), pk, rng).unwrap(),
                        score: pk.encrypt_u64(item.score, rng).unwrap(),
                    }
                })
                .collect()
        })
        .collect()
}

#[test]
fn fig3_per_depth_bounds_match_the_paper() {
    let mut rng = StdRng::seed_from_u64(3333);
    let owner = DataOwner::new(TEST_MODULUS_BITS, TEST_EHL_KEYS, &mut rng).unwrap();
    let keys = owner.keys();
    let encoder = EhlEncoder::new(&keys.ehl_keys);
    let pk = keys.paillier_public.clone();
    let sk = &keys.paillier_secret;
    let mut clouds = TwoClouds::new(owner.keys(), 3).unwrap();

    // ---- Depth 1 (Fig. 3a): items X1/10, X2/8, X4/8; lower bounds 10, 8, 8; upper 26. --
    let seen1 = fig3_encrypted_prefixes(1, &encoder, &pk, &mut rng);
    let depth1: Vec<EncryptedItem> = seen1.iter().map(|l| l[0].clone()).collect();
    let worst1 = clouds.sec_worst_depth(&depth1, 0).unwrap();
    let best1 = clouds.sec_best_depth(&depth1, &seen1, 0).unwrap();
    let worst1: Vec<u64> = worst1.iter().map(|c| sk.decrypt_u64(c).unwrap()).collect();
    let best1: Vec<u64> = best1.iter().map(|c| sk.decrypt_u64(c).unwrap()).collect();
    assert_eq!(worst1, vec![10, 8, 8], "Fig. 3a lower bounds");
    assert_eq!(best1, vec![26, 26, 26], "Fig. 3a upper bounds");

    // ---- Depth 2 (Fig. 3b): items X2/8, X3/7, X3/6. -------------------------------------
    // Lower bounds at this depth: X2 = 8, X3 = 7 + 6 = 13 (both copies).
    // Upper bounds: X2 = 22, X3 = 21.
    let seen2 = fig3_encrypted_prefixes(2, &encoder, &pk, &mut rng);
    let depth2: Vec<EncryptedItem> = seen2.iter().map(|l| l[1].clone()).collect();
    let worst2 = clouds.sec_worst_depth(&depth2, 1).unwrap();
    let best2 = clouds.sec_best_depth(&depth2, &seen2, 1).unwrap();
    let worst2: Vec<u64> = worst2.iter().map(|c| sk.decrypt_u64(c).unwrap()).collect();
    let best2: Vec<u64> = best2.iter().map(|c| sk.decrypt_u64(c).unwrap()).collect();
    assert_eq!(worst2, vec![8, 13, 13], "Fig. 3b per-depth lower bounds");
    assert_eq!(best2, vec![22, 21, 21], "Fig. 3b upper bounds");

    // ---- Depth 3 (Fig. 3c): items X3/5, X1/3, X1/2. --------------------------------------
    // X3's local worst at depth 3 is 5; X1 appears in R2 (3) and R3 (2) → 5 for both copies.
    let seen3 = fig3_encrypted_prefixes(3, &encoder, &pk, &mut rng);
    let depth3: Vec<EncryptedItem> = seen3.iter().map(|l| l[2].clone()).collect();
    let worst3 = clouds.sec_worst_depth(&depth3, 2).unwrap();
    let worst3: Vec<u64> = worst3.iter().map(|c| sk.decrypt_u64(c).unwrap()).collect();
    assert_eq!(worst3, vec![5, 5, 5], "Fig. 3c per-depth lower bounds");

    // Best scores at depth 3: every object has now been seen in every list, so the upper
    // bound equals its exact total: X3 = 18, X1 = 15.
    let best3 = clouds.sec_best_depth(&depth3, &seen3, 2).unwrap();
    let best3: Vec<u64> = best3.iter().map(|c| sk.decrypt_u64(c).unwrap()).collect();
    assert_eq!(best3, vec![18, 15, 15], "Fig. 3c upper bounds");
}

#[test]
fn fig3_dedup_keeps_one_copy_per_object_at_depth_two() {
    // At depth 2 the items are X2 (once) and X3 (twice); SecDedup must leave exactly one
    // live copy of each, as shown in the T² table of Fig. 3b.
    let mut rng = StdRng::seed_from_u64(4444);
    let owner = DataOwner::new(TEST_MODULUS_BITS, TEST_EHL_KEYS, &mut rng).unwrap();
    let keys = owner.keys();
    let encoder = EhlEncoder::new(&keys.ehl_keys);
    let pk = keys.paillier_public.clone();
    let sk = &keys.paillier_secret;
    let mut clouds = TwoClouds::new(owner.keys(), 4).unwrap();

    let seen2 = fig3_encrypted_prefixes(2, &encoder, &pk, &mut rng);
    let depth2: Vec<EncryptedItem> = seen2.iter().map(|l| l[1].clone()).collect();
    let worst = clouds.sec_worst_depth(&depth2, 1).unwrap();
    let best = clouds.sec_best_depth(&depth2, &seen2, 1).unwrap();
    let gamma: Vec<sectopk_protocols::ScoredItem> = depth2
        .iter()
        .zip(worst.into_iter().zip(best))
        .map(|(item, (w, b))| sectopk_protocols::ScoredItem {
            ehl: item.ehl.clone(),
            worst: w,
            best: b,
        })
        .collect();
    let deduped = clouds.sec_dedup(gamma, 1).unwrap();
    assert_eq!(deduped.len(), 3);

    // Count how many surviving entries match X3 (id 3): exactly one.
    let x3 = encoder.encode(&ObjectId(3).to_bytes(), &pk, &mut rng).unwrap();
    let mut x3_matches = 0;
    for item in &deduped {
        if sk.is_zero(&item.ehl.eq_test(&x3, &pk, &mut rng)).unwrap() {
            x3_matches += 1;
            assert_eq!(sk.decrypt_u64(&item.worst).unwrap(), 13);
        }
    }
    assert_eq!(x3_matches, 1, "exactly one live copy of X3 after SecDedup");
}
