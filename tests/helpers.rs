//! Shared helpers for the cross-crate integration tests.
//!
//! Every end-to-end test follows the same pattern: a data owner outsources a small
//! relation, a [`Session`] executes queries built with the `QueryBuilder` front door,
//! and the resolved object ids are checked to form a *valid* top-k set (same score
//! multiset as the exact plaintext answer — NRA only guarantees set validity, not a
//! particular tie-break order).

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::{
    DataOwner, DirectSession, Outsourced, Query, QueryConfig, QueryOutcome, Session, VariantChoice,
};
use sectopk_storage::{ObjectId, Relation, Score, TopKQuery};

/// Paillier modulus size used by the integration tests (small = fast; the protocols are
/// parameterised over it, see DESIGN.md).
pub const TEST_MODULUS_BITS: usize = 128;

/// Number of EHL PRF keys used by the integration tests.
pub const TEST_EHL_KEYS: usize = 3;

/// Everything a test needs to run secure queries against one relation.
pub struct Harness {
    /// The data owner (key holder).
    pub owner: DataOwner,
    /// The plaintext relation (kept for oracle comparisons).
    pub relation: Relation,
    /// The outsourced encrypted relation plus its resolution universe.
    pub outsourced: Outsourced,
    /// The session executing queries (a dedicated two-cloud deployment).
    pub session: DirectSession,
    /// Test-local randomness.
    pub rng: StdRng,
}

/// Build a harness around `relation`.
pub fn harness(relation: Relation, seed: u64) -> Harness {
    let mut rng = StdRng::seed_from_u64(seed);
    let owner = DataOwner::new(TEST_MODULUS_BITS, TEST_EHL_KEYS, &mut rng)
        .expect("key generation succeeds");
    let (outsourced, _) =
        owner.outsource(&relation, &mut rng).expect("relation encryption succeeds");
    let session = owner.connect(&outsourced, seed ^ 0xABCD).expect("cloud setup succeeds");
    Harness { owner, relation, outsourced, session, rng }
}

/// Run a secure query end to end through the `Session` front door and return the
/// resolved object ids (plus the outcome).  The legacy `(TopKQuery, QueryConfig)` shape
/// is kept so the suites can keep sweeping explicit variants.
pub fn run_query(
    h: &mut Harness,
    query: &TopKQuery,
    config: &QueryConfig,
) -> (Vec<ObjectId>, QueryOutcome) {
    h.session.reset_accounting();
    let mut built =
        Query::from_spec(query.clone()).with_variant(VariantChoice::Fixed(config.variant));
    if let Some(depths) = config.max_depth {
        built = built.with_max_depth(depths);
    }
    let resolved = h.session.execute(&built).expect("secure query succeeds");
    (resolved.object_ids(), resolved.outcome)
}

/// Run a builder-described query as-is (e.g. with `variant(Auto)`) and return the full
/// resolved answer.
pub fn run_built_query(h: &mut Harness, query: &Query) -> sectopk_core::ResolvedTopK {
    h.session.reset_accounting();
    h.session.execute(query).expect("secure query succeeds")
}

/// Assert that `returned` is a valid top-k answer for the query: it must contain `k`
/// distinct objects whose exact aggregate scores form the same multiset as the exact
/// plaintext top-k (ties may be broken differently by the secure protocol).
pub fn assert_valid_top_k(
    relation: &Relation,
    attributes: &[usize],
    weights: &[Score],
    k: usize,
    returned: &[ObjectId],
    context: &str,
) {
    let expected = relation.plaintext_top_k(attributes, weights, k);
    assert_eq!(
        returned.len(),
        expected.len(),
        "{context}: expected {} results, got {:?}",
        expected.len(),
        returned
    );
    let mut seen = std::collections::HashSet::new();
    for id in returned {
        assert!(seen.insert(*id), "{context}: object {id} returned twice");
    }
    let mut returned_scores: Vec<u128> = returned
        .iter()
        .map(|&id| {
            relation
                .aggregate_score(id, attributes, weights)
                .unwrap_or_else(|| panic!("{context}: unknown object {id} in result"))
        })
        .collect();
    let mut expected_scores: Vec<u128> = expected.iter().map(|(_, s)| *s).collect();
    returned_scores.sort_unstable();
    expected_scores.sort_unstable();
    assert_eq!(
        returned_scores, expected_scores,
        "{context}: returned objects {returned:?} do not form a valid top-{k} set"
    );
}
