//! The observability layer must be *strictly observational*: metrics on or off, the
//! protocol's observable behaviour — resolved ciphertexts, planner decisions, channel
//! metrics, both leakage ledgers — is byte-identical, on every transport and at every
//! intra-query worker count.  A metric that perturbs protocol bytes would invalidate
//! the leakage goldens and the transport-equivalence guarantees at once, so this suite
//! is the fence around the whole `sectopk-metrics` integration.
//!
//! Three layers of assertion:
//!
//! 1. **Invariance** — serving runs (multiplex and TCP) and direct single-session runs
//!    (all four transports) with an enabled registry vs a disabled one produce
//!    identical reports.
//! 2. **Exactness** — deterministic counters (requests by kind, sessions attached,
//!    planner variants, idle refills, admission rejects, absorbed faults) are asserted
//!    to exact values or exact identities against the always-on accounting.
//! 3. **Structure** — timing histograms are asserted structurally (count = Σ bucket
//!    counts, round-latency count = round counter), never on wall-clock values.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

use sectopk_core::{
    execute_with_clouds, resolution_rng, DataOwner, FaultPlan, Outsourced, Query, RetryPolicy,
    TcpOptions, VariantChoice,
};
use sectopk_datasets::{fig3_relation, QueryWorkload, WorkloadSpec};
use sectopk_metrics::{MetricsSnapshot, Registry};
use sectopk_protocols::{
    MultiplexServer, PoolLimits, TcpCloudServer, TcpServerConfig, TransportKind, TwoClouds,
};
use sectopk_server::{QueryServer, ServeConfig, SessionReport};
use sectopk_tests::{TEST_EHL_KEYS, TEST_MODULUS_BITS};

fn fixture(seed: u64, queries: usize) -> (DataOwner, Outsourced, QueryWorkload) {
    let mut rng = StdRng::seed_from_u64(seed);
    let owner = DataOwner::new(TEST_MODULUS_BITS, 2, &mut rng).expect("keygen");
    let (outsourced, _) = owner.outsource(&fig3_relation(), &mut rng).expect("encryption");
    let spec = WorkloadSpec { queries, m_range: (1, 3), k_range: (1, 3) };
    let workload = QueryWorkload::generate(&spec, 3, seed ^ 0x77);
    (owner, outsourced, workload)
}

fn assert_sessions_identical(a: &SessionReport, b: &SessionReport, context: &str) {
    assert_eq!(a.session, b.session, "{context}: session ids diverge");
    assert_eq!(a.seed, b.seed, "{context}: session seeds diverge");
    assert_eq!(a.failures, b.failures, "{context}: failure lists diverge");
    assert_eq!(
        a.transport_failures, b.transport_failures,
        "{context}: absorbed-fault counts diverge"
    );
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{context}: query counts diverge");
    for (i, (x, y)) in a.outcomes.iter().zip(b.outcomes.iter()).enumerate() {
        assert_eq!(x.top_k, y.top_k, "{context}: query {i} ciphertexts diverge");
        assert_eq!(x.stats.plan, y.stats.plan, "{context}: query {i} planner decisions diverge");
    }
    assert_eq!(a.metrics, b.metrics, "{context}: channel metrics diverge");
    assert_eq!(a.s1_ledger.events(), b.s1_ledger.events(), "{context}: S1 ledgers diverge");
    assert_eq!(a.s2_ledger.events(), b.s2_ledger.events(), "{context}: S2 ledgers diverge");
}

/// Every histogram must be internally consistent: total count equals the sum of its
/// bucket counts.  Values are never asserted — timing is host-dependent.
fn assert_histograms_structural(snapshot: &MetricsSnapshot) {
    for (name, h) in &snapshot.histograms {
        let bucketed: u64 = h.buckets.iter().map(|b| b.count).sum();
        assert_eq!(h.count, bucketed, "histogram {name}: count != sum of bucket counts");
    }
}

/// Metrics on vs off, multiplex and TCP serving, 1 and 4 intra-query workers: the
/// per-session reports must be byte-identical in every comparable field.
#[test]
fn serving_reports_are_identical_with_metrics_on_and_off() {
    let (owner, outsourced, workload) = fixture(0x0B5E_0001, 8);
    for intra in [1usize, 4] {
        for tcp in [false, true] {
            let config = ServeConfig::new(2, 0x0B5E_C0DE)
                .with_variant(VariantChoice::Auto)
                .with_intra_workers(intra);
            let run = |registry: Registry| {
                let server =
                    QueryServer::with_metrics(owner.keys(), outsourced.clone(), 2, registry);
                if tcp {
                    server.serve_tcp(&workload, &config)
                } else {
                    server.serve(&workload, &config)
                }
                .expect("serve")
            };
            let on = run(Registry::enabled());
            let off = run(Registry::disabled());
            let context = format!("intra={intra} tcp={tcp}");
            assert_eq!(on.sessions.len(), off.sessions.len(), "{context}");
            for (a, b) in on.sessions.iter().zip(off.sessions.iter()) {
                assert_sessions_identical(a, b, &format!("{context} session {}", a.session));
            }
            // The disabled run records literally nothing; the enabled one recorded the
            // same protocol — and its histograms are structurally sound.
            assert_eq!(
                off.metrics,
                MetricsSnapshot::default(),
                "{context}: disabled registry leaked"
            );
            assert!(
                !on.metrics.counters.is_empty(),
                "{context}: enabled registry recorded nothing"
            );
            assert_histograms_structural(&on.metrics);
        }
    }
}

/// Metrics on vs off across all four transports on a bare [`TwoClouds`]: ciphertexts,
/// ledgers and channel metrics are unchanged by instrumentation.
#[test]
fn direct_transports_are_identical_with_metrics_on_and_off() {
    let kinds = [
        TransportKind::InProcess,
        TransportKind::Channel,
        TransportKind::Multiplex,
        TransportKind::Tcp,
    ];
    for kind in kinds {
        let run = |registry: &Registry| {
            let mut rng = StdRng::seed_from_u64(0x0B5E_0002);
            let owner = DataOwner::new(TEST_MODULUS_BITS, TEST_EHL_KEYS, &mut rng).expect("keygen");
            let (outsourced, _) = owner.outsource(&fig3_relation(), &mut rng).expect("encryption");
            let mut clouds =
                TwoClouds::with_transport(owner.keys(), 0xD00D, kind, true).expect("cloud setup");
            clouds.set_metrics(registry, "direct");
            let query = Query::top_k(2).attribute_indices([0, 1]).build().expect("query builds");
            let mut res_rng = resolution_rng(0xD00D);
            let resolved = execute_with_clouds(
                &mut clouds,
                outsourced.er(),
                outsourced.object_ids(),
                owner.keys(),
                &mut res_rng,
                &query,
            )
            .expect("query");
            (resolved.outcome, clouds.channel(), clouds.s1_ledger().clone(), clouds.s2_ledger())
        };
        let enabled = Registry::enabled();
        let (outcome_on, channel_on, s1_on, s2_on) = run(&enabled);
        let (outcome_off, channel_off, s1_off, s2_off) = run(&Registry::disabled());
        assert_eq!(outcome_on.top_k, outcome_off.top_k, "{kind:?}: ciphertexts diverge");
        assert_eq!(outcome_on.stats.plan, outcome_off.stats.plan, "{kind:?}: plans diverge");
        assert_eq!(channel_on, channel_off, "{kind:?}: channel metrics diverge");
        assert_eq!(s1_on.events(), s1_off.events(), "{kind:?}: S1 ledgers diverge");
        assert_eq!(s2_on.events(), s2_off.events(), "{kind:?}: S2 ledgers diverge");
        // The mirrored round counter agrees exactly with the always-on accounting.
        let snapshot = enabled.snapshot();
        assert_eq!(
            snapshot.counters.get("session.direct.rounds").copied(),
            Some(channel_on.rounds),
            "{kind:?}: mirrored round counter diverges from ChannelMetrics"
        );
        let rounds_hist =
            snapshot.histograms.get("session.direct.round_nanos").expect("round histogram");
        assert_eq!(rounds_hist.count, channel_on.rounds, "{kind:?}: round timings != rounds");
        assert_histograms_structural(&snapshot);
    }
}

/// The deterministic counters are exact: request mix vs rounds, attachments, planner
/// variants, idle refills — all asserted as identities against the protocol's own
/// accounting, not as "nonzero".
#[test]
fn deterministic_counters_are_exact() {
    let (owner, outsourced, workload) = fixture(0x0B5E_0003, 8);
    let registry = Registry::enabled();
    let server = QueryServer::with_metrics(owner.keys(), outsourced, 2, registry.clone());
    let config = ServeConfig::new(2, 0x0B5E_0003).with_variant(VariantChoice::Auto);
    let report = server.serve(&workload, &config).expect("serve");
    assert_eq!(report.query_failures(), 0, "fixture workload must serve cleanly");
    let snapshot = report.metrics;

    // Two sessions attached to the pool, nothing shed, evicted or replayed.
    assert_eq!(snapshot.counters.get("pool.attached").copied(), Some(2));
    assert_eq!(snapshot.counters.get("pool.shed").copied().unwrap_or(0), 0);
    assert_eq!(snapshot.counters.get("pool.replayed").copied().unwrap_or(0), 0);

    // Each session's mirrored round counter matches its ChannelMetrics exactly.
    let mut total_rounds = 0u64;
    for session in &report.sessions {
        let name = format!("session.{}.rounds", session.session.0);
        assert_eq!(
            snapshot.counters.get(&name).copied(),
            Some(session.metrics.rounds),
            "{name} diverges from the session's ChannelMetrics"
        );
        total_rounds += session.metrics.rounds;
    }

    // Request-mix identity: every round carries exactly one top-level request, and a
    // Batch counts itself plus its inner requests — so the sum of all by-kind counters
    // minus the inner-request total (the batch-size histogram's sum) is the round
    // count.  An off-by-anything here means requests are double- or under-counted.
    let by_kind: u64 = snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("engine.requests."))
        .map(|(_, v)| *v)
        .sum();
    let inner: u64 = snapshot.histograms.get("engine.batch_size").map_or(0, |h| h.sum);
    assert_eq!(
        by_kind - inner,
        total_rounds,
        "engine request counters do not reconcile with the round count"
    );

    // The planner recorded exactly one variant decision per successful query.
    let planned: u64 = snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("serve.planner."))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(planned, report.queries as u64, "one planner decision per query");

    // Each session refills between consecutive queries: (len - 1) per partition, so
    // queries - sessions in total.
    assert_eq!(
        snapshot.counters.get("serve.idle_refills").copied(),
        Some((report.queries - report.sessions.len()) as u64),
        "idle refills != queries - sessions"
    );

    assert_histograms_structural(&snapshot);

    // The live polling API sees at least everything the report snapshotted.
    let live = server.metrics_snapshot();
    assert_eq!(live.counters, snapshot.counters, "live poll diverges from report snapshot");
}

/// Admission control under a session burst: the accept and per-code reject counters
/// are exact, and they reconcile with the typed errors the clients saw.
#[test]
fn overload_rejects_and_accepts_are_exact() {
    let (owner, outsourced, _) = fixture(0x0B5E_0004, 1);
    let registry = Registry::enabled();
    let listener = TcpCloudServer::serve_pool(
        "127.0.0.1:0",
        std::sync::Arc::new(MultiplexServer::with_limits_and_metrics(
            2,
            PoolLimits::default(),
            registry.clone(),
        )),
        TcpServerConfig::default().with_max_sessions(2),
    )
    .expect("capped listener binds");
    let addr = listener.local_addr().to_string();

    let admitted: Vec<_> = (1..=2u64)
        .map(|i| {
            owner
                .connect_remote_with(&outsourced, &addr, 0x5EA7 + i, true, TcpOptions::default())
                .expect("seat admitted")
        })
        .collect();
    owner
        .connect_remote_with(&outsourced, &addr, 0x5EA7, true, TcpOptions::default())
        .map(|_| ())
        .expect_err("third session must be shed by admission control");

    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counters.get("tcp.server.accepts").copied(), Some(2));
    assert_eq!(snapshot.counters.get("tcp.server.rejects.full").copied(), Some(1));
    assert_eq!(snapshot.counters.get("pool.attached").copied(), Some(2));
    drop(admitted);
}

/// Fault-injected TCP serving: zero query failures (retry absorbs everything), a
/// nonzero absorbed-fault count, and the client-side fault counters reconcile exactly
/// with the per-session `transport_failures` totals.
#[test]
fn injected_faults_are_counted_and_absorbed_without_query_failures() {
    let (owner, outsourced, workload) = fixture(0x0B5E_0005, 8);
    let registry = Registry::enabled();
    let server = QueryServer::with_metrics(owner.keys(), outsourced, 2, registry.clone());
    let retry = RetryPolicy {
        attempts: 12,
        backoff: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
        deadline: Duration::from_secs(120),
    };
    let config = ServeConfig::new(2, 0x0B5E_0005)
        .with_variant(VariantChoice::Auto)
        .with_retry(retry)
        .with_faults(FaultPlan::none().with_drop_after_send_every(17));
    let report = server.serve_tcp(&workload, &config).expect("faulted TCP serve");

    // The error-count split: query failures stay zero — absorbed transport faults are
    // accounted separately and must be nonzero here (faults *were* injected).
    assert_eq!(report.error_count(), 0, "retry must absorb every injected fault");
    assert_eq!(report.query_failures(), report.error_count());
    assert!(report.transport_failures() > 0, "injected faults must be counted as absorbed");

    // Exact reconciliation: every absorbed fault is either a reconnect-resume recovery
    // or a shed-retry success, and each increments its client counter exactly once.
    let snapshot = &report.metrics;
    let reconnects = snapshot.counters.get("tcp.client.reconnects").copied().unwrap_or(0);
    let shed_retries = snapshot.counters.get("tcp.client.shed_retries").copied().unwrap_or(0);
    assert_eq!(
        reconnects + shed_retries,
        report.transport_failures(),
        "client fault counters do not reconcile with the absorbed-fault total"
    );
    // Dropped-after-send faults exercise resumption and the server replay cache.
    assert!(snapshot.counters.get("tcp.server.resumed").copied().unwrap_or(0) > 0);
    assert!(snapshot.counters.get("pool.replayed").copied().unwrap_or(0) > 0);
    assert_histograms_structural(snapshot);
}

/// A session's raw protocol work is visible through the trace hook: one enter and one
/// exit per round, span names matching the request kinds.
#[test]
fn trace_hook_sees_every_round() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[derive(Debug, Default)]
    struct CountingTrace {
        enters: AtomicU64,
        exits: AtomicU64,
    }
    impl sectopk_metrics::TraceHook for CountingTrace {
        fn enter(&self, _span: &str) {
            self.enters.fetch_add(1, Ordering::Relaxed);
        }
        fn exit(&self, _span: &str) {
            self.exits.fetch_add(1, Ordering::Relaxed);
        }
    }

    let mut rng = StdRng::seed_from_u64(0x0B5E_0006);
    let owner = DataOwner::new(TEST_MODULUS_BITS, TEST_EHL_KEYS, &mut rng).expect("keygen");
    let (outsourced, _) = owner.outsource(&fig3_relation(), &mut rng).expect("encryption");
    let mut clouds =
        TwoClouds::with_transport(owner.keys(), 0x7ACE, TransportKind::InProcess, true)
            .expect("cloud setup");
    let trace = Arc::new(CountingTrace::default());
    clouds.set_trace_hook(trace.clone());
    let query = Query::top_k(1).attribute_indices([0, 1]).build().expect("query builds");
    let mut res_rng = resolution_rng(0x7ACE);
    execute_with_clouds(
        &mut clouds,
        outsourced.er(),
        outsourced.object_ids(),
        owner.keys(),
        &mut res_rng,
        &query,
    )
    .expect("query");
    let rounds = clouds.channel().rounds;
    assert!(rounds > 0);
    assert_eq!(trace.enters.load(Ordering::Relaxed), rounds, "one span enter per round");
    assert_eq!(trace.exits.load(Ordering::Relaxed), rounds, "one span exit per round");
}
