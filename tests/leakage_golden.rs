//! Golden leakage-ledger regression tests.
//!
//! The leakage profile is a *security contract* (Theorem 9.2): what each cloud observes
//! during a query is exactly the leakage function's output, nothing more.  The
//! `leakage_profiles` suite checks the recorded views against the allowed event kinds;
//! this suite pins the **entire fixed-seed event stream** — kinds, contexts, depths,
//! bit values, order — as committed JSON snapshots, so any change to what the protocols
//! reveal (a new event, a reordered exchange, an extra equality bit) fails loudly in
//! review instead of slipping in silently.
//!
//! To re-bless after an *intentional* leakage-profile change:
//!
//! ```text
//! SECTOPK_BLESS=1 cargo test --release --test leakage_golden
//! ```
//!
//! and audit the diff of `tests/golden/*.json` like any other security-relevant change.
//! The snapshots are transport-invariant (asserted by `transport_equivalence`), so the
//! same goldens hold on the in-process, channel and multiplex paths.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use sectopk_core::{
    encrypt_for_join, join_token, sec_query, top_k_join, DataOwner, JoinQuery, QueryConfig,
};
use sectopk_datasets::fig3_relation;
use sectopk_protocols::{LeakageLedger, TransportKind, TwoClouds};
use sectopk_storage::{ObjectId, Relation, Row, TopKQuery};
use sectopk_tests::{TEST_EHL_KEYS, TEST_MODULUS_BITS};

/// The committed shape: both parties' full event streams for one fixed-seed execution.
#[derive(Serialize)]
struct GoldenLedgers {
    s1: LeakageLedger,
    s2: LeakageLedger,
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compare the serialized ledgers against the committed snapshot, or rewrite it when
/// `SECTOPK_BLESS` is set.
fn check_golden(name: &str, ledgers: &GoldenLedgers) {
    let rendered = serde_json::to_string_pretty(ledgers).expect("serialize ledgers") + "\n";
    let path = golden_path(name);
    if std::env::var("SECTOPK_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, &rendered).expect("write golden snapshot");
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with SECTOPK_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        committed, rendered,
        "leakage ledger for {name} diverged from the committed snapshot — if this \
         change is intentional, re-bless with SECTOPK_BLESS=1 and audit the diff"
    );
}

#[test]
fn full_query_ledgers_match_golden_snapshot() {
    let mut rng = StdRng::seed_from_u64(0x601D);
    let owner = DataOwner::new(TEST_MODULUS_BITS, TEST_EHL_KEYS, &mut rng).expect("keygen");
    let relation = fig3_relation();
    let (er, _) = owner.encrypt(&relation, &mut rng).expect("encryption");
    let token = owner.authorize_client().token(3, &TopKQuery::sum(vec![0, 1, 2], 2)).unwrap();
    // Pinned to the in-process transport so the test is independent of the CI
    // transport matrix; the goldens hold for all transports by equivalence.
    let mut clouds =
        TwoClouds::with_transport(owner.keys(), 0x601D_BEEF, TransportKind::InProcess, true)
            .expect("cloud setup");
    sec_query(&mut clouds, &er, &token, &QueryConfig::full()).expect("query");
    check_golden(
        "ledger_full_query.json",
        &GoldenLedgers { s1: clouds.s1_ledger().clone(), s2: clouds.s2_ledger() },
    );
}

#[test]
fn join_ledgers_match_golden_snapshot() {
    let mut rng = StdRng::seed_from_u64(0x601E);
    let owner = DataOwner::new(TEST_MODULUS_BITS, TEST_EHL_KEYS, &mut rng).expect("keygen");
    let keys = owner.keys();
    let left = Relation::new(
        vec!["A".into(), "C".into()],
        vec![
            Row { id: ObjectId(1), values: vec![1, 10] },
            Row { id: ObjectId(2), values: vec![2, 20] },
        ],
    );
    let right = Relation::new(
        vec!["B".into(), "D".into()],
        vec![
            Row { id: ObjectId(1), values: vec![2, 5] },
            Row { id: ObjectId(2), values: vec![9, 7] },
        ],
    );
    let enc_left = encrypt_for_join(&left, keys, "join/left", &mut rng).unwrap();
    let enc_right = encrypt_for_join(&right, keys, "join/right", &mut rng).unwrap();
    let query = JoinQuery { join_left: 0, join_right: 0, score_left: 1, score_right: 1, k: 2 };
    let token = join_token(keys, 2, 2, &query, &[1], &[1]).unwrap();
    let mut clouds =
        TwoClouds::with_transport(keys, 0x601E_CAFE, TransportKind::InProcess, true).unwrap();
    top_k_join(&mut clouds, &enc_left, &enc_right, &token).unwrap();
    check_golden(
        "ledger_join.json",
        &GoldenLedgers { s1: clouds.s1_ledger().clone(), s2: clouds.s2_ledger() },
    );
}
