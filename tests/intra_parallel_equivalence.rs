//! Intra-query parallelism must be unobservable: for a fixed seed, a query executed
//! with `intra_workers = 4` must produce **byte-identical** results, leakage ledgers
//! (both parties) and channel metrics as the same query executed fully serially — on
//! every transport.  Worker count is a local resource decision, never protocol state;
//! any divergence means randomness was drawn in a scheduling-dependent order or the
//! parallel compute phase leaked into the serial commit order.
//!
//! The serving layer gets the same treatment: a `ServeConfig` with intra-query workers
//! must reproduce the serial run's per-session reports exactly (the engine-side knob is
//! exercised through `TwoClouds::connect_with_workers`, which parallelizes S2's compute
//! phase as well as S1's client loops).

use rand::rngs::StdRng;
use rand::SeedableRng;

use sectopk_core::{DataOwner, Query, QueryConfig, Session, VariantChoice};
use sectopk_datasets::QueryWorkload;
use sectopk_protocols::{ChannelMetrics, LeakageLedger, ScoredItem, TransportKind};
use sectopk_server::{ServeConfig, ServeExt};
use sectopk_storage::{ObjectId, Relation, Row, TopKQuery};
use sectopk_tests::{TEST_EHL_KEYS, TEST_MODULUS_BITS};

const ALL_TRANSPORTS: [TransportKind; 4] = [
    TransportKind::InProcess,
    TransportKind::Channel,
    TransportKind::Multiplex,
    TransportKind::Tcp,
];

fn relation_with_duplicates() -> Relation {
    // Duplicate score rows so the dup-elim variant exercises SecDedup's replace/keep
    // paths (the upper-bound nonce prefill and the parallel dedup decrypts).
    Relation::new(
        vec!["r1".into(), "r2".into(), "r3".into()],
        vec![
            Row { id: ObjectId(1), values: vec![10, 3, 2] },
            Row { id: ObjectId(2), values: vec![8, 8, 0] },
            Row { id: ObjectId(3), values: vec![5, 7, 6] },
            Row { id: ObjectId(4), values: vec![5, 7, 6] },
            Row { id: ObjectId(5), values: vec![3, 2, 8] },
            Row { id: ObjectId(6), values: vec![1, 1, 1] },
        ],
    )
}

struct Observation {
    top_k: Vec<ScoredItem>,
    s1_ledger: LeakageLedger,
    s2_ledger: LeakageLedger,
    metrics: ChannelMetrics,
}

fn run_with_workers(kind: TransportKind, config: &QueryConfig, workers: usize) -> Observation {
    let mut rng = StdRng::seed_from_u64(0x1A7A);
    let owner = DataOwner::new(TEST_MODULUS_BITS, TEST_EHL_KEYS, &mut rng).expect("keygen");
    let relation = relation_with_duplicates();
    let (outsourced, _) = owner.outsource(&relation, &mut rng).expect("encryption");
    let query = Query::from_spec(TopKQuery::sum(vec![0, 1, 2], 2))
        .with_variant(VariantChoice::Fixed(config.variant));
    let mut session = owner.connect_with(&outsourced, 0xF00D, kind, true).expect("cloud setup");
    session.clouds_mut().set_intra_workers(workers);
    let outcome = session.execute(&query).expect("query").outcome;
    Observation {
        top_k: outcome.top_k,
        s1_ledger: session.s1_ledger(),
        s2_ledger: session.s2_ledger(),
        metrics: session.metrics(),
    }
}

fn assert_byte_identical(serial: &Observation, parallel: &Observation, label: &str) {
    assert_eq!(
        serial.top_k, parallel.top_k,
        "{label}: parallel execution changed result ciphertexts"
    );
    assert_eq!(
        serial.s1_ledger.events(),
        parallel.s1_ledger.events(),
        "{label}: S1 ledgers diverge"
    );
    assert_eq!(
        serial.s2_ledger.events(),
        parallel.s2_ledger.events(),
        "{label}: S2 ledgers diverge"
    );
    assert_eq!(serial.metrics, parallel.metrics, "{label}: channel metrics diverge");
}

#[test]
fn intra_parallelism_is_byte_invariant_on_every_transport() {
    for config in [QueryConfig::full(), QueryConfig::dup_elim()] {
        for kind in ALL_TRANSPORTS {
            let serial = run_with_workers(kind, &config, 1);
            for workers in [2, 4, 7] {
                let parallel = run_with_workers(kind, &config, workers);
                assert_byte_identical(
                    &serial,
                    &parallel,
                    &format!("{kind:?} / {:?} / {workers} workers", config.variant),
                );
            }
        }
    }
}

#[test]
fn serving_with_intra_workers_matches_serial_reports() {
    // ServeConfig::with_intra_workers (through TwoClouds::connect_with_workers) sets
    // the worker count on BOTH the S1 loops and each session's S2 engine, so this
    // covers the engine's parallel compute / serial commit pipeline end to end.
    let mut rng = StdRng::seed_from_u64(0x5E11);
    let owner = DataOwner::new(TEST_MODULUS_BITS, TEST_EHL_KEYS, &mut rng).expect("keygen");
    let relation = relation_with_duplicates();
    let (outsourced, _) = owner.outsource(&relation, &mut rng).expect("encryption");
    let server = owner.serve_relation(&outsourced, 2);
    let workload = QueryWorkload {
        queries: vec![
            TopKQuery::sum(vec![0, 1, 2], 2),
            TopKQuery::sum(vec![0, 1], 3),
            TopKQuery::sum(vec![1, 2], 1),
            TopKQuery::sum(vec![0, 2], 2),
        ],
    };
    let base = ServeConfig::new(2, 0xD00D).with_variant(VariantChoice::Auto);

    let serial = server.serve(&workload, &base.with_intra_workers(1)).expect("serial serve");
    let parallel = server.serve(&workload, &base.with_intra_workers(4)).expect("parallel serve");

    assert_eq!(serial.sessions.len(), parallel.sessions.len());
    for (s, p) in serial.sessions.iter().zip(parallel.sessions.iter()) {
        assert_eq!(s.session, p.session);
        assert_eq!(s.seed, p.seed);
        assert_eq!(s.failures.len(), p.failures.len(), "failure counts diverge");
        assert_eq!(s.metrics, p.metrics, "session {:?}: channel metrics diverge", s.session);
        assert_eq!(
            s.s1_ledger.events(),
            p.s1_ledger.events(),
            "session {:?}: S1 ledgers diverge",
            s.session
        );
        assert_eq!(
            s.s2_ledger.events(),
            p.s2_ledger.events(),
            "session {:?}: S2 ledgers diverge",
            s.session
        );
        assert_eq!(s.outcomes.len(), p.outcomes.len());
        for (so, po) in s.outcomes.iter().zip(p.outcomes.iter()) {
            assert_eq!(
                so.top_k, po.top_k,
                "session {:?}: worker count changed result ciphertexts",
                s.session
            );
            assert_eq!(so.stats.depths_scanned, po.stats.depths_scanned);
            assert_eq!(so.stats.halted, po.stats.halted);
        }
    }
}
