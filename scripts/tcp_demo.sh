#!/usr/bin/env bash
# Two-process demo of the TCP deployment: `sectopk-s2d` (crypto cloud S2, no keys, no
# data) in one process, `sectopk-cli query` (data owner / S1 side) in another, a full
# Qry_F top-k query over a real loopback socket.
#
#   scripts/tcp_demo.sh [--seed N] [--rows N] [--k N]
#
# Exits 0 iff the query completes and prints a ranked result list.
set -euo pipefail

SEED=7
ROWS=8
K=2
while [[ $# -gt 0 ]]; do
  case "$1" in
    --seed) SEED="$2"; shift 2 ;;
    --rows) ROWS="$2"; shift 2 ;;
    --k) K="$2"; shift 2 ;;
    *) echo "usage: $0 [--seed N] [--rows N] [--k N]" >&2; exit 2 ;;
  esac
done

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

echo "[demo] building release binaries…"
cargo build --release -q -p sectopk-server

S2D=target/release/sectopk-s2d
CLI=target/release/sectopk-cli
S2D_LOG="$(mktemp)"

cleanup() {
  [[ -n "${S2D_PID:-}" ]] && kill "$S2D_PID" 2>/dev/null || true
  rm -f "$S2D_LOG"
}
trap cleanup EXIT

# Start the S2 daemon on an ephemeral port and grep the bound address off stdout.
"$S2D" --listen 127.0.0.1:0 --workers 2 >"$S2D_LOG" &
S2D_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's/^sectopk-s2d listening on //p' "$S2D_LOG")"
  [[ -n "$ADDR" ]] && break
  kill -0 "$S2D_PID" 2>/dev/null || { echo "[demo] s2d died:" >&2; cat "$S2D_LOG" >&2; exit 1; }
  sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "[demo] s2d never reported its address" >&2; exit 1; }
echo "[demo] sectopk-s2d (pid $S2D_PID) listening on $ADDR"

echo "[demo] owner-side setup cost:"
"$CLI" outsource --seed "$SEED" --rows "$ROWS"

echo "[demo] running top-$K Qry_F against the remote S2…"
OUT="$("$CLI" query --server "$ADDR" --seed "$SEED" --rows "$ROWS" --k "$K" --variant full)"
echo "$OUT"

# The query subcommand prints one "#rank: object …" line per result plus a final
# plan=… summary; verify both survived the trip.
echo "$OUT" | grep -q '^#0: object' || { echo "[demo] no ranked results" >&2; exit 1; }
echo "$OUT" | grep -q '^plan=Qry_F' || { echo "[demo] missing Qry_F summary" >&2; exit 1; }
echo "[demo] OK — full Qry_F completed across two processes"
